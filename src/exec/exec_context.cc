#include "exec/exec_context.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/cost_model.h"

namespace rpe {

ExecContext::ExecContext(const PhysicalPlan* plan, const Catalog* catalog,
                         const ExecOptions& options)
    : plan_(plan), catalog_(catalog), options_(options) {
  counters_.resize(plan->num_nodes());
  double est_total_time = 0.0;
  for (const PlanNode* n : plan->nodes()) {
    NodeCounters& c = counters_[static_cast<size_t>(n->id)];
    c.e0 = n->est_rows;
    c.e = n->est_rows;
    c.row_width = static_cast<double>(n->output_schema.row_width_bytes());
    c.est_bytes = n->est_rows * c.row_width;
    est_total_time += EstimateNodeTime(n->op, n->est_rows, c.row_width);
  }
  sample_interval_ =
      std::max(1.0, est_total_time /
                        std::max(1, options_.target_observations));
  next_sample_ = sample_interval_;
}

void ExecContext::Charge(double cost) {
  RPE_DCHECK(cost >= 0.0);
  vtime_ += cost;
  MaybeSample();
}

void ExecContext::ChargeRead(int id, double bytes) {
  counters_[static_cast<size_t>(id)].bytes_read += bytes;
  Charge(bytes * kReadCostPerByte);
}

void ExecContext::ChargeWrite(int id, double bytes) {
  counters_[static_cast<size_t>(id)].bytes_written += bytes;
  Charge(bytes * kWriteCostPerByte);
}

void ExecContext::OnRowProduced(int id, OpType op, double width) {
  NodeCounters& c = counters_[static_cast<size_t>(id)];
  c.k += 1.0;
  c.bytes_read += width;
  Charge(CpuCostPerRow(op));
}

void ExecContext::MaybeSample() {
  if (vtime_ < next_sample_) return;
  SampleNow();
  next_sample_ = vtime_ + sample_interval_;
  if (static_cast<int>(observations_.size()) >=
      options_.max_observations) {
    // Halve resolution: keep every other observation, double the interval.
    std::vector<Observation> kept;
    kept.reserve(observations_.size() / 2 + 1);
    for (size_t i = 0; i < observations_.size(); i += 2) {
      kept.push_back(std::move(observations_[i]));
    }
    observations_ = std::move(kept);
    sample_interval_ *= 2.0;
    next_sample_ = vtime_ + sample_interval_;
  }
}

void ExecContext::SampleNow() {
  RefineBounds();
  Observation obs;
  obs.vtime = vtime_;
  const size_t n = counters_.size();
  obs.k.resize(n);
  obs.e.resize(n);
  obs.lb.resize(n);
  obs.ub.resize(n);
  obs.bytes_read.resize(n);
  obs.bytes_written.resize(n);
  for (size_t i = 0; i < n; ++i) {
    obs.k[i] = counters_[i].k;
    obs.e[i] = counters_[i].e;
    obs.lb[i] = counters_[i].lb;
    obs.ub[i] = counters_[i].ub;
    obs.bytes_read[i] = counters_[i].bytes_read;
    obs.bytes_written[i] = counters_[i].bytes_written;
  }
  observations_.push_back(std::move(obs));
}

void ExecContext::RefineBounds() {
  // Preorder ids: every descendant has a larger id than its ancestor, so a
  // descending sweep visits children before parents.
  const auto& nodes = plan_->nodes();
  for (size_t idx = nodes.size(); idx-- > 0;) {
    const PlanNode* n = nodes[idx];
    NodeCounters& c = counters_[static_cast<size_t>(n->id)];
    c.lb = c.k;
    auto child_counters = [&](size_t i) -> NodeCounters& {
      return counters_[static_cast<size_t>(n->child(i)->id)];
    };
    auto remaining = [](const NodeCounters& cc) {
      return std::max(0.0, cc.ub - cc.k);
    };
    switch (n->op) {
      case OpType::kTableScan:
      case OpType::kIndexScan:
      case OpType::kIndexSeek: {
        // Non-inner scans: input size known exactly once the operator opened
        // (operators set e = lb = ub = N at open); nothing further to do.
        // Inner side of a nested iteration: total calls depend on the outer
        // cardinality; only the trivial bound K <= N applies (paper §6.3:
        // bounds "offer no meaningful bounds" for nested iteration).
        break;
      }
      case OpType::kFilter: {
        // A filter buffers nothing: output cannot exceed what it already
        // produced plus what the input can still deliver.
        c.ub = std::min(c.ub, c.k + remaining(child_counters(0)));
        break;
      }
      case OpType::kStreamAggregate: {
        // One group may be pending in the accumulator (+1).
        c.ub = std::min(c.ub, c.k + remaining(child_counters(0)) + 1.0);
        break;
      }
      case OpType::kHashAggregate: {
        if (c.input_done) break;  // exact group count published at open end
        // Groups accumulated so far are bounded by rows consumed so far:
        // total output <= input consumed + input still possible.
        const NodeCounters& child = child_counters(0);
        c.ub = std::min(c.ub, c.k + child.k + remaining(child));
        break;
      }
      case OpType::kBatchSort: {
        // Up to batch_size consumed rows may sit unemitted in the buffer.
        c.ub = std::min(c.ub, c.k + remaining(child_counters(0)) +
                                  static_cast<double>(n->batch_size));
        break;
      }
      case OpType::kTop: {
        c.ub = std::min({c.ub, static_cast<double>(n->limit),
                         c.k + remaining(child_counters(0))});
        break;
      }
      case OpType::kSort: {
        if (c.input_done) {
          // Exact: the sort consumed its entire input; N is known.
          break;
        }
        // The whole consumed input is buffered and will be emitted.
        const NodeCounters& child = child_counters(0);
        c.ub = std::min(c.ub, c.k + child.k + remaining(child));
        break;
      }
      case OpType::kNestedLoopJoin: {
        const NodeCounters& outer = child_counters(0);
        const double per_outer = c.max_join_group > 0.0
                                     ? c.max_join_group
                                     : kCardinalityInf;
        const double bound = c.k + (remaining(outer) + 1.0) * per_outer;
        c.ub = std::min({c.ub, kCardinalityInf, bound});
        break;
      }
      case OpType::kHashJoin: {
        const NodeCounters& probe = child_counters(1);
        if (c.input_done) {
          const double per_probe =
              c.max_join_group > 0.0 ? c.max_join_group : 0.0;
          c.ub = std::min(c.ub, c.k + (remaining(probe) + 1.0) * per_probe);
        }
        break;
      }
      case OpType::kMergeJoin: {
        const NodeCounters& l = child_counters(0);
        const NodeCounters& r = child_counters(1);
        const double bound =
            c.k + (remaining(l) + 1.0) * (remaining(r) + 1.0);
        c.ub = std::min({c.ub, kCardinalityInf, bound});
        break;
      }
    }
    c.ub = std::max(c.ub, c.lb);
    // Clamp E into [LB, UB] — the refinement strategy of [6].
    c.e = std::clamp(c.e, c.lb, c.ub);
  }
}

}  // namespace rpe
