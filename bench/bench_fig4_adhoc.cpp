// Figure 4: robustness on fully "ad-hoc" queries — each of the six
// workloads held out in turn, the selector trained on the other five.
// Prints the error-ratio curve percentiles (the paper's per-query curves)
// and the fraction of pipelines for which each policy picks the optimal
// estimator among {DNE, TGN, LUO}.
#include <iostream>

#include "bench/bench_util.h"
#include "common/stats.h"

using namespace rpe;
using namespace rpe::bench;

int main() {
  std::cout << "=== Figure 4: ad-hoc (leave-one-workload-out) robustness "
               "===\n";
  AdHocResult adhoc = RunAdHocExperiment();
  const auto& records = adhoc.records;
  const std::vector<size_t> pool = PoolOriginalThree();

  struct Row {
    std::string name;
    std::vector<size_t> choices;
  };
  const std::vector<Row> rows = {
      {"DNE", FixedChoice(records, pool[0])},
      {"TGN", FixedChoice(records, pool[1])},
      {"LUO", FixedChoice(records, pool[2])},
      {"Est. Selection (static)", adhoc.static3},
      {"Est. Selection (dynamic)", adhoc.dynamic3},
  };

  TablePrinter table({"Policy", "p50", "p75", "p90", "p95", "p99",
                      "% optimal"});
  for (const Row& row : rows) {
    auto curve = ErrorRatioCurve(records, row.choices, pool);
    const auto metrics = EvaluateChoices(records, row.choices, pool);
    table.AddRow({row.name, TablePrinter::Fmt(Percentile(curve, 50), 2),
                  TablePrinter::Fmt(Percentile(curve, 75), 2),
                  TablePrinter::Fmt(Percentile(curve, 90), 2),
                  TablePrinter::Fmt(Percentile(curve, 95), 2),
                  TablePrinter::Fmt(Percentile(curve, 99), 2),
                  TablePrinter::Pct(metrics.pct_optimal)});
  }
  table.Print();
  std::cout << "\nPaper's result: DNE/TGN/LUO optimal for 31%/44%/25% of\n"
               "queries; selection optimal for 55% (static) and 64%\n"
               "(dynamic), with far smaller error when not optimal.\n";
  return 0;
}
