// TPC-H-like workload: the classic order/lineitem schema with the TPC row
// ratios scaled down ~1000x, Zipfian skew applied to fact-table foreign keys
// (the paper's skewed TPC-H generator [1]), and date columns correlated with
// keys so that independence-assumption cardinality estimates err in
// realistic ways.
#include <cmath>

#include "workload/build_util.h"
#include "workload/workload.h"

namespace rpe {

namespace {

constexpr double kRegionRows = 5;
constexpr double kNationRows = 25;

double SupplierRows(double sf) { return 50 + 10 * sf; }
double CustomerRows(double sf) { return 150 * sf; }
double PartRows(double sf) { return 200 * sf; }
double PartsuppRows(double sf) { return 800 * sf; }
double OrdersRows(double sf) { return 1500 * sf; }
double LineitemRows(double sf) { return 6000 * sf; }

constexpr int64_t kMaxDate = 2555;  // ~7 years of days

Status BuildTpchTables(Catalog* catalog, double sf, double z, Rng* rng) {
  const uint64_t suppliers = ScaledRows(SupplierRows(sf), 1.0);
  const uint64_t customers = ScaledRows(CustomerRows(sf), 1.0, 50);
  const uint64_t parts = ScaledRows(PartRows(sf), 1.0, 50);
  const uint64_t orders = ScaledRows(OrdersRows(sf), 1.0, 200);
  const uint64_t lineitems = ScaledRows(LineitemRows(sf), 1.0, 800);
  // Date = orderkey / keys_per_day + noise: dates correlate with keys.
  const int64_t keys_per_day =
      std::max<int64_t>(1, static_cast<int64_t>(orders) / kMaxDate);

  RPE_RETURN_NOT_OK(TableBuilder("region", 5)
                        .Col("r_regionkey", 8, ColumnGen::Sequential())
                        .Col("r_pad", 32, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("nation", 25)
                        .Col("n_nationkey", 8, ColumnGen::Sequential())
                        .Col("n_regionkey", 8, ColumnGen::FkUniform(5))
                        .Col("n_pad", 24, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("supplier", suppliers)
                        .Col("s_suppkey", 8, ColumnGen::Sequential())
                        .Col("s_nationkey", 8, ColumnGen::FkUniform(25))
                        .Col("s_acctbal", 8, ColumnGen::Uniform(0, 9999))
                        .Col("s_pad", 40, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("customer", customers)
                        .Col("c_custkey", 8, ColumnGen::Sequential())
                        .Col("c_nationkey", 8, ColumnGen::FkUniform(25))
                        .Col("c_mktsegment", 8, ColumnGen::Zipf(5, 0.5, false))
                        .Col("c_acctbal", 8, ColumnGen::Uniform(0, 9999))
                        .Col("c_pad", 80, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("part", parts)
                        .Col("p_partkey", 8, ColumnGen::Sequential())
                        .Col("p_brand", 8, ColumnGen::Zipf(25, z, false))
                        .Col("p_type", 8, ColumnGen::Zipf(150, z))
                        .Col("p_size", 8, ColumnGen::Uniform(1, 50))
                        .Col("p_pad", 60, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("partsupp", ScaledRows(PartsuppRows(sf), 1.0))
                        .Col("ps_partkey", 8, ColumnGen::FkZipf(parts, z * 0.5))
                        .Col("ps_suppkey", 8, ColumnGen::FkUniform(suppliers))
                        .Col("ps_availqty", 8, ColumnGen::Uniform(1, 9999))
                        .Col("ps_supplycost", 8, ColumnGen::Uniform(1, 1000))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(
      TableBuilder("orders", orders)
          .Col("o_orderkey", 8, ColumnGen::Sequential())
          .Col("o_custkey", 8, ColumnGen::FkZipf(customers, z))
          // Correlated with the (sequential) order key.
          .Col("o_orderdate", 8, ColumnGen::Correlated(0, keys_per_day, 30))
          .Col("o_orderpriority", 8, ColumnGen::Zipf(5, 0.7, false))
          .Col("o_totalprice", 8, ColumnGen::Uniform(1000, 500000))
          .Col("o_pad", 40, ColumnGen::Constant(0))
          .AddTo(catalog, rng));
  const int64_t li_keys_per_day =
      std::max<int64_t>(1, static_cast<int64_t>(orders) / kMaxDate);
  RPE_RETURN_NOT_OK(
      TableBuilder("lineitem", lineitems)
          .Col("l_orderkey", 8, ColumnGen::FkZipf(orders, z))
          .Col("l_partkey", 8, ColumnGen::FkZipf(parts, z))
          .Col("l_suppkey", 8, ColumnGen::FkUniform(suppliers))
          // Ship date correlates with the order key (and hence with
          // o_orderdate across tables).
          .Col("l_shipdate", 8, ColumnGen::Correlated(0, li_keys_per_day, 90))
          .Col("l_quantity", 8,
               ColumnGen::Zipf(50, z > 1.2 ? 1.2 : z, false))
          .Col("l_extendedprice", 8, ColumnGen::Uniform(100, 100000))
          .Col("l_returnflag", 8, ColumnGen::Zipf(3, 0.8, false))
          .Col("l_pad", 24, ColumnGen::Constant(0))
          .AddTo(catalog, rng));
  return Status::OK();
}

SchemaGraph TpchGraph(double sf) {
  SchemaGraph g;
  g.tables = {"region",   "nation", "supplier", "customer",
              "part",     "partsupp", "orders", "lineitem"};
  g.table_rows = {kRegionRows,    kNationRows,      SupplierRows(sf),
                  CustomerRows(sf), PartRows(sf),   PartsuppRows(sf),
                  OrdersRows(sf),   LineitemRows(sf)};
  auto edge = [&](size_t a, const char* ca, size_t b, const char* cb) {
    JoinPath e;
    e.table_a = a;
    e.col_a = ca;
    e.table_b = b;
    e.col_b = cb;
    e.fanout_ab = std::max(1.0, g.table_rows[b] / g.table_rows[a]);
    e.fanout_ba = std::max(1.0, g.table_rows[a] / g.table_rows[b]);
    g.edges.push_back(e);
  };
  edge(0, "r_regionkey", 1, "n_regionkey");
  edge(1, "n_nationkey", 2, "s_nationkey");
  edge(1, "n_nationkey", 3, "c_nationkey");
  edge(3, "c_custkey", 6, "o_custkey");
  edge(6, "o_orderkey", 7, "l_orderkey");
  edge(4, "p_partkey", 7, "l_partkey");
  edge(2, "s_suppkey", 7, "l_suppkey");
  edge(4, "p_partkey", 5, "ps_partkey");
  edge(2, "s_suppkey", 5, "ps_suppkey");

  g.filters = {
      {3, "c_mktsegment", 1, 5, 0.9},
      {3, "c_acctbal", 0, 9999, 0.0},
      {2, "s_acctbal", 0, 9999, 0.0},
      {4, "p_brand", 1, 25, 0.8},
      {4, "p_type", 1, 150, 0.6},
      {4, "p_size", 1, 50, 0.3},
      {5, "ps_availqty", 1, 9999, 0.0},
      {6, "o_orderdate", 0, kMaxDate + 30, 0.05},
      {6, "o_orderpriority", 1, 5, 0.9},
      {7, "l_shipdate", 0, kMaxDate + 90, 0.05},
      {7, "l_quantity", 1, 50, 0.3},
      {7, "l_returnflag", 1, 3, 0.9},
  };
  g.group_cols = {
      {1, "n_regionkey"},   {2, "s_nationkey"},  {3, "c_nationkey"},
      {4, "p_brand"},       {4, "p_size"},       {6, "o_orderpriority"},
      {7, "l_returnflag"},  {7, "l_quantity"},
  };
  return g;
}

}  // namespace

Result<Workload> BuildTpchWorkload(const WorkloadConfig& config) {
  Workload w;
  w.config = config;
  w.catalog = std::make_unique<Catalog>();
  Rng data_rng(config.seed * 2654435761ULL + 17);
  RPE_RETURN_NOT_OK(
      BuildTpchTables(w.catalog.get(), config.scale, config.zipf, &data_rng));
  w.design = DesignFor(WorkloadKind::kTpch, config.tuning);
  RPE_RETURN_NOT_OK(ApplyPhysicalDesign(w.catalog.get(), w.design));
  w.graph = TpchGraph(config.scale);

  QueryGenParams params;
  params.min_joins = 0;
  params.max_joins = 4;
  params.filter_prob = 0.65;
  params.agg_prob = 0.45;
  params.top_prob = 0.2;
  Rng query_rng(config.seed * 99991ULL + 3);
  RPE_ASSIGN_OR_RETURN(w.queries,
                       GenerateQueries(w.graph, params, config.name + "_q",
                                       config.num_queries, &query_rng));
  return w;
}

}  // namespace rpe
