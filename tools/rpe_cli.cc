// Command-line driver for the progress-estimation library:
//
//   rpe_cli run      --kind tpch --queries 200 --scale 10 --zipf 1.0
//                    --tuning partial --seed 1 --out records.csv
//       Build a workload, execute it, and write the pipeline records.
//       `--out x.rpsn` (or --binary) writes a binary record snapshot.
//
//   rpe_cli train    --records records.{csv|rpsn} [--pool three|six|all]
//                    [--trees 200] --out stack.rpsn
//       Train the full selector stack (static + dynamic) and persist it as
//       a binary model snapshot.
//
//   rpe_cli evaluate --train a.csv --test b.csv [--pool ...] [--dynamic]
//       Train on one record set, evaluate on another, print the metrics.
//
//   rpe_cli inspect  --records records.{csv|rpsn}
//       Summarize a record set (per-estimator error stats and win rates).
//
//   rpe_cli snapshot-save --records records.csv --out records.rpsn
//       Convert a CSV record set into a binary record snapshot.
//
//   rpe_cli snapshot-load --in x.rpsn [--out records.csv]
//       Verify + describe a snapshot (either kind); optionally convert a
//       record snapshot back to CSV.
//
//   rpe_cli serve-replay --kind tpch --queries 60 [--sessions 64]
//                        [--shards 4] [--model stack.rpsn] [--mmap]
//                        [--trees 50] [--verify]
//       Run a workload, then replay every query concurrently through the
//       (optionally sharded) monitor tier and print the serving stats
//       (p50/p95 replay latency, decisions/sec). --mmap loads --model
//       zero-copy through the snapshot arena.
//
//   rpe_cli serve-tcp --kind tpch --queries 40 [--port 0] [--shards 4]
//                     [--io-threads 0] [--model stack.rpsn] [--mmap]
//                     [--trees 50] [--metrics-port 0] [--trace-out t.json]
//                     [--slow-ms 50]
//       Run a workload, then serve it over TCP (loopback) with the epoll
//       front-end: Open/Advance/Progress/Close/Stats over the
//       length-prefixed wire protocol (docs/NETWORK.md). Prints
//       "listening on 127.0.0.1:<port>" once ready (--port 0 picks an
//       ephemeral port), serves until SIGTERM/SIGINT, then drains, prints
//       the serving stats, and exits 0. Drive it with rpe_loadgen.
//       --metrics-port opens a loopback HTTP /metrics listener
//       (Prometheus text, "metrics on 127.0.0.1:<port>" printed at
//       startup); --trace-out writes a Chrome trace-event JSON dump at
//       exit; --slow-ms logs any request slower than the threshold with a
//       per-span breakdown (see docs/OBSERVABILITY.md).
//
//   rpe_cli serve-online --kind tpch --queries 40 [--sessions 64]
//                        [--shards 4] [--model stack.rpsn] [--mmap]
//                        [--retrain-every 48] [--queue-cap 1024]
//                        [--tick-budget 16] [--snapshot-out stack.rpsn]
//                        [--verify]
//       The full online-learning loop: replay sessions tick concurrently
//       while completed records stream into the ingest queue; a
//       background TrainerLoop retrains the selector stack and hot-swaps
//       it into every shard mid-replay. Prints serving + ingest stats;
//       fails if no retrain was published.
//
// See docs/CLI.md for the full flag reference. All commands accept
// --threads N to size the training/selection worker pool (default:
// RPE_NUM_THREADS env var, else hardware concurrency). Trained models are
// identical at any thread count.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/simd.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/metrics_export.h"
#include "serving/mmap_arena.h"
#include "serving/monitor_service.h"
#include "serving/server.h"
#include "serving/shard_router.h"
#include "serving/snapshot.h"
#include "serving/trainer_loop.h"

namespace rpe {
namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "true";
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

Result<WorkloadKind> ParseKind(const std::string& s) {
  if (s == "tpch") return WorkloadKind::kTpch;
  if (s == "tpcds") return WorkloadKind::kTpcds;
  if (s == "real1") return WorkloadKind::kReal1;
  if (s == "real2") return WorkloadKind::kReal2;
  return Status::InvalidArgument("unknown workload kind: " + s);
}

Result<TuningLevel> ParseTuning(const std::string& s) {
  if (s == "untuned") return TuningLevel::kUntuned;
  if (s == "partial") return TuningLevel::kPartiallyTuned;
  if (s == "full") return TuningLevel::kFullyTuned;
  return Status::InvalidArgument("unknown tuning level: " + s);
}

std::vector<size_t> ParsePool(const std::string& s) {
  if (s == "three") return PoolOriginalThree();
  if (s == "all") return PoolAll();
  return PoolSix();
}

/// Shared workload flags (kind/name/scale/zipf/tuning/queries/seed);
/// per-command defaults differ only in scale and query count.
Result<WorkloadConfig> ParseWorkloadFlags(
    const std::map<std::string, std::string>& flags,
    const std::string& default_scale, const std::string& default_queries) {
  WorkloadConfig config;
  RPE_ASSIGN_OR_RETURN(config.kind, ParseKind(FlagOr(flags, "kind", "tpch")));
  config.name = FlagOr(flags, "name", FlagOr(flags, "kind", "tpch"));
  config.scale = std::stod(FlagOr(flags, "scale", default_scale));
  config.zipf = std::stod(FlagOr(flags, "zipf", "1.0"));
  RPE_ASSIGN_OR_RETURN(config.tuning,
                       ParseTuning(FlagOr(flags, "tuning", "partial")));
  config.num_queries = static_cast<size_t>(
      std::stoul(FlagOr(flags, "queries", default_queries)));
  config.seed = std::stoull(FlagOr(flags, "seed", "1"));
  return config;
}

/// Strictly-parsed integer flag in [min, max]: a typo'd or out-of-range
/// value must fail loudly with a hint, not std::stoul its way into a
/// nonsense server configuration.
Result<size_t> ParseSizeFlag(const std::map<std::string, std::string>& flags,
                             const std::string& key,
                             const std::string& fallback, size_t min,
                             size_t max) {
  const std::string raw = FlagOr(flags, key, fallback);
  size_t value = 0;
  size_t consumed = 0;
  try {
    value = std::stoul(raw, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != raw.size() || raw.empty() || value < min || value > max) {
    return Status::InvalidArgument(
        "invalid --" + key + " value '" + raw + "' (expected an integer in [" +
        std::to_string(min) + ", " + std::to_string(max) +
        "]); see docs/CLI.md or rpe_cli --help");
  }
  return value;
}

bool IsSnapshotPath(const std::string& path) {
  return path.size() >= 5 &&
         path.compare(path.size() - 5, 5, ".rpsn") == 0;
}

/// Records load from either persistence format, keyed by extension:
/// `.rpsn` is the binary snapshot, anything else the CSV path.
Result<std::vector<PipelineRecord>> LoadRecordsAuto(const std::string& path) {
  if (IsSnapshotPath(path)) return LoadRecordBatch(path);
  return LoadRecords(path);
}

int CmdRun(const std::map<std::string, std::string>& flags) {
  auto config = ParseWorkloadFlags(flags, /*default_scale=*/"10",
                                   /*default_queries=*/"200");
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }

  RunOptions options;
  options.progress_every = 100;
  std::cerr << "building + running workload " << config->name << " ...\n";
  auto records = BuildAndRun(*config, options, FlagOr(flags, "tag", ""));
  if (!records.ok()) {
    std::cerr << records.status().ToString() << "\n";
    return 1;
  }
  const bool binary = flags.count("binary") > 0;
  const std::string out =
      FlagOr(flags, "out", binary ? "records.rpsn" : "records.csv");
  const Status save = binary || IsSnapshotPath(out)
                          ? SaveRecordBatch(*records, out)
                          : SaveRecords(*records, out);
  if (!save.ok()) {
    std::cerr << save.ToString() << "\n";
    return 1;
  }
  std::cout << records->size() << " pipeline records -> " << out << "\n";
  return 0;
}

int CmdTrain(const std::map<std::string, std::string>& flags) {
  auto records = LoadRecordsAuto(FlagOr(flags, "records", "records.csv"));
  if (!records.ok()) {
    std::cerr << records.status().ToString() << "\n";
    return 1;
  }
  MartParams params = EstimatorSelector::DefaultParams();
  params.num_trees = std::stoi(FlagOr(flags, "trees", "200"));
  const SelectorStack stack = SelectorStack::Train(
      *records, ParsePool(FlagOr(flags, "pool", "six")), params);

  const std::string out = FlagOr(flags, "out", "stack.rpsn");
  const Status save = SaveSelectorStack(stack, out);
  if (!save.ok()) {
    std::cerr << save.ToString() << "\n";
    return 1;
  }
  std::cout << "trained static+dynamic selectors ("
            << stack.static_selector.models().size()
            << " candidate models each) on " << records->size()
            << " records -> " << out << "\n";
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  auto train = LoadRecordsAuto(FlagOr(flags, "train", "train.csv"));
  auto test = LoadRecordsAuto(FlagOr(flags, "test", "test.csv"));
  if (!train.ok() || !test.ok()) {
    std::cerr << "failed to load records\n";
    return 1;
  }
  const auto pool = ParsePool(FlagOr(flags, "pool", "six"));
  const bool dynamic = flags.count("dynamic") > 0;
  MartParams params = EstimatorSelector::DefaultParams();
  params.num_trees = std::stoi(FlagOr(flags, "trees", "100"));
  const auto eval = TrainAndEvaluate(*train, *test, pool, dynamic, params);

  TablePrinter table({"Policy", "avg L1", "avg L2", "% optimal", ">5x"});
  for (size_t est : pool) {
    const auto m = EvaluateChoices(*test, FixedChoice(*test, est), pool);
    table.AddRow({EstimatorName(static_cast<EstimatorKind>(est)),
                  TablePrinter::Fmt(m.avg_l1, 4),
                  TablePrinter::Fmt(m.avg_l2, 4),
                  TablePrinter::Pct(m.pct_optimal),
                  TablePrinter::Pct(m.frac_ratio_gt5)});
  }
  table.AddRow({"EST. SELECTION", TablePrinter::Fmt(eval.metrics.avg_l1, 4),
                TablePrinter::Fmt(eval.metrics.avg_l2, 4),
                TablePrinter::Pct(eval.metrics.pct_optimal),
                TablePrinter::Pct(eval.metrics.frac_ratio_gt5)});
  table.Print();
  return 0;
}

int CmdInspect(const std::map<std::string, std::string>& flags) {
  auto records = LoadRecordsAuto(FlagOr(flags, "records", "records.csv"));
  if (!records.ok()) {
    std::cerr << records.status().ToString() << "\n";
    return 1;
  }
  std::cout << records->size() << " pipeline records\n";
  std::map<std::string, size_t> per_workload;
  for (const auto& r : *records) per_workload[r.workload]++;
  for (const auto& [w, n] : per_workload) {
    std::cout << "  " << w << ": " << n << "\n";
  }
  TablePrinter table({"Estimator", "avg L1", "win rate"});
  for (int e = 0; e < kNumSelectableEstimators; ++e) {
    const auto m =
        EvaluateChoices(*records, FixedChoice(*records, static_cast<size_t>(e)));
    table.AddRow({EstimatorName(static_cast<EstimatorKind>(e)),
                  TablePrinter::Fmt(m.avg_l1, 4),
                  TablePrinter::Pct(
                      FractionOptimal(*records, static_cast<size_t>(e)))});
  }
  table.Print();
  return 0;
}

int CmdSnapshotSave(const std::map<std::string, std::string>& flags) {
  auto records = LoadRecordsAuto(FlagOr(flags, "records", "records.csv"));
  if (!records.ok()) {
    std::cerr << records.status().ToString() << "\n";
    return 1;
  }
  const std::string out = FlagOr(flags, "out", "records.rpsn");
  auto save = SaveRecordBatch(*records, out);
  if (!save.ok()) {
    std::cerr << save.ToString() << "\n";
    return 1;
  }
  std::cout << records->size() << " records -> binary snapshot " << out
            << "\n";
  return 0;
}

int CmdSnapshotLoad(const std::map<std::string, std::string>& flags) {
  const std::string in = FlagOr(flags, "in", "records.rpsn");
  auto bytes = ReadSnapshotFile(in);
  if (!bytes.ok()) {
    std::cerr << bytes.status().ToString() << "\n";
    return 1;
  }
  auto kind = PeekSnapshotKind(*bytes);
  if (!kind.ok()) {
    std::cerr << kind.status().ToString() << "\n";
    return 1;
  }
  if (*kind == SnapshotKind::kRecordBatch) {
    auto records = DecodeRecordBatch(*bytes);
    if (!records.ok()) {
      std::cerr << records.status().ToString() << "\n";
      return 1;
    }
    std::cout << in << ": record batch, " << records->size()
              << " records (CRC ok)\n";
    if (flags.count("out") > 0) {
      auto save = SaveRecords(*records, flags.at("out"));
      if (!save.ok()) {
        std::cerr << save.ToString() << "\n";
        return 1;
      }
      std::cout << "  -> CSV " << flags.at("out") << "\n";
    }
    return 0;
  }
  auto stack = DecodeSelectorStack(*bytes);
  if (!stack.ok()) {
    std::cerr << stack.status().ToString() << "\n";
    return 1;
  }
  std::cout << in << ": selector stack (CRC ok)\n";
  for (const auto* sel : {&stack->static_selector, &stack->dynamic_selector}) {
    size_t trees = 0;
    for (const auto& m : sel->models()) trees += m.num_trees();
    std::cout << "  " << (sel->uses_dynamic_features() ? "dynamic" : "static")
              << ": " << sel->models().size() << " candidate models, "
              << trees << " trees total, pool {";
    for (size_t i = 0; i < sel->pool().size(); ++i) {
      std::cout << (i > 0 ? " " : "")
                << EstimatorName(static_cast<EstimatorKind>(sel->pool()[i]));
    }
    std::cout << "}\n";
  }
  return 0;
}

/// Build + execute a serving workload, keeping every successful run alive
/// (sessions replay against them) and its featurized records. Shared by
/// serve-replay and serve-online.
Status ExecuteServingWorkload(const WorkloadConfig& config,
                              std::vector<OwnedRun>* runs,
                              std::vector<PipelineRecord>* records) {
  std::cerr << "building + running workload " << config.name << " ...\n";
  RPE_ASSIGN_OR_RETURN(Workload workload, BuildWorkload(config));
  RunOptions options;
  for (const QuerySpec& spec : workload.queries) {
    auto run = RunQuery(workload, spec, options);
    if (!run.ok()) continue;
    for (const Pipeline& pipeline : run->result.pipelines) {
      PipelineView view{&run->result, &pipeline};
      PipelineRecord record;
      if (MakeRecord(view, config.name, spec.name, "", &record,
                     options.min_observations)) {
        records->push_back(std::move(record));
      }
    }
    runs->push_back(std::move(run).ValueOrDie());
  }
  if (runs->empty()) {
    return Status::Internal("no query of the workload executed successfully");
  }
  if (records->empty()) {
    return Status::Internal(
        "workload produced no trainable pipeline records (every pipeline "
        "below min_observations); increase --queries or --scale");
  }
  return Status::OK();
}

/// Load the --model snapshot up front — before the (expensive) workload
/// run — so a corrupt, truncated, or missing file fails in milliseconds
/// with its Status on stderr and a nonzero exit. Returns nullptr when no
/// --model flag was given (the stack is trained post-workload instead).
Result<std::shared_ptr<const SelectorStack>> PreloadModel(
    const std::map<std::string, std::string>& flags) {
  if (flags.count("model") == 0) {
    return std::shared_ptr<const SelectorStack>(nullptr);
  }
  const std::string& path = flags.at("model");
  if (flags.count("mmap") > 0) {
    RPE_ASSIGN_OR_RETURN(ArenaStackLoad loaded, LoadSelectorStackMmap(path));
    std::cerr << "mmap-loaded selector stack from " << path << " ("
              << (loaded.zero_copy ? "zero-copy" : "copy fallback") << ", "
              << loaded.mapped_bytes << " bytes mapped)\n";
    return loaded.stack;
  }
  RPE_ASSIGN_OR_RETURN(SelectorStack loaded, LoadSelectorStack(path));
  std::cerr << "loaded selector stack from " << path << "\n";
  return std::make_shared<const SelectorStack>(std::move(loaded));
}

/// Initial serving stack: the preloaded --model when given, else trained
/// on `records` with --trees trees.
std::shared_ptr<const SelectorStack> InitialStack(
    const std::map<std::string, std::string>& flags,
    std::shared_ptr<const SelectorStack> preloaded,
    const std::vector<PipelineRecord>& records,
    const std::string& default_trees) {
  if (preloaded != nullptr) return preloaded;
  MartParams params = EstimatorSelector::DefaultParams();
  params.num_trees = std::stoi(FlagOr(flags, "trees", default_trees));
  std::cerr << "training selector stack on " << records.size()
            << " records ...\n";
  return std::make_shared<const SelectorStack>(SelectorStack::Train(
      records, ParsePool(FlagOr(flags, "pool", "six")), params));
}

/// Shared --shards parsing for the serve commands (1..1024; powers of two
/// route cheapest but are not required).
Result<size_t> ParseShards(const std::map<std::string, std::string>& flags) {
  return ParseSizeFlag(flags, "shards", "1", 1, 1024);
}

/// The single definition of the --mmap flag contract, shared by both
/// serve commands.
Status CheckMmapFlags(const std::map<std::string, std::string>& flags) {
  if (flags.count("mmap") > 0 && flags.count("model") == 0) {
    return Status::InvalidArgument(
        "--mmap requires --model <stack.rpsn> (there is nothing to map when "
        "the stack is trained in-process); see docs/CLI.md");
  }
  return Status::OK();
}

int CmdServeReplay(const std::map<std::string, std::string>& flags) {
  auto parsed = ParseWorkloadFlags(flags, /*default_scale=*/"5",
                                   /*default_queries=*/"60");
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  const WorkloadConfig& config = *parsed;

  // Flag validation happens before the (expensive) workload run: a typo'd
  // serve configuration must fail in milliseconds.
  auto shards = ParseShards(flags);
  auto sessions_flag = ParseSizeFlag(flags, "sessions", "64", 1, 1 << 20);
  const Status mmap_ok = CheckMmapFlags(flags);
  for (const Status& st :
       {shards.status(), sessions_flag.status(), mmap_ok}) {
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 2;
    }
  }
  auto preloaded = PreloadModel(flags);
  if (!preloaded.ok()) {
    std::cerr << preloaded.status().ToString() << "\n";
    return 1;
  }

  std::vector<OwnedRun> runs;
  std::vector<PipelineRecord> records;
  const Status executed = ExecuteServingWorkload(config, &runs, &records);
  if (!executed.ok()) {
    std::cerr << executed.ToString() << "\n";
    return 1;
  }

  std::shared_ptr<const SelectorStack> stack =
      InitialStack(flags, *preloaded, records, /*default_trees=*/"50");

  // One session per requested slot, cycling the executed runs.
  const size_t num_sessions = *sessions_flag;
  std::vector<const QueryRunResult*> session_runs;
  session_runs.reserve(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    session_runs.push_back(&runs[s % runs.size()].result);
  }

  ShardedMonitorService::Options service_options;
  service_options.num_shards = *shards;
  ShardedMonitorService service(stack, service_options);
  const auto series = service.ReplayAll(session_runs);

  if (flags.count("verify") > 0) {
    // Every replica of a run must match the sequential monitor bit for bit.
    ProgressMonitor sequential(&stack->static_selector,
                               &stack->dynamic_selector);
    for (size_t s = 0; s < session_runs.size(); ++s) {
      const auto expected = sequential.ReplayQueryProgress(*session_runs[s]);
      if (series[s] != expected) {
        std::cerr << "VERIFY FAILED: session " << s
                  << " diverges from the sequential replay\n";
        return 1;
      }
    }
    std::cout << "verify: " << session_runs.size()
              << " concurrent sessions bit-identical to sequential replay\n";
  }

  // The exit table is registry-driven (one formatter for every serve-*
  // command): the rows ARE the samples a /metrics scrape would export.
  obs::MetricsRegistry registry;
  RegisterServiceCollector(&registry, &service);
  RegisterSimdCollector(&registry);
  TablePrinter table = MetricsTable(registry.Collect());
  table.AddRow({"simd", simd::KernelReport()});
  table.Print();
  return 0;
}

/// SIGTERM/SIGINT land here; the serve-tcp main loop polls the flag and
/// runs the (non-async-signal-safe) drain outside the handler.
volatile std::sig_atomic_t g_serve_tcp_stop = 0;

void ServeTcpSignalHandler(int) { g_serve_tcp_stop = 1; }

int CmdServeTcp(const std::map<std::string, std::string>& flags) {
  auto parsed = ParseWorkloadFlags(flags, /*default_scale=*/"5",
                                   /*default_queries=*/"40");
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  const WorkloadConfig& config = *parsed;

  // Flag validation happens before the (expensive) workload run: a typo'd
  // serve configuration must fail in milliseconds.
  auto shards = ParseShards(flags);
  auto port = ParseSizeFlag(flags, "port", "0", 0, 65535);
  auto io_threads = ParseSizeFlag(flags, "io-threads", "0", 0, 256);
  auto queue_cap = ParseSizeFlag(flags, "queue-cap", "1024", 1, 1 << 24);
  auto retrain_every =
      ParseSizeFlag(flags, "retrain-every", "48", 0, 1 << 24);
  // TrainerLoop requires max_corpus >= min_corpus (at most 16 here).
  auto corpus_cap = ParseSizeFlag(flags, "corpus-cap", "4096", 16, 1 << 24);
  auto max_inflight =
      ParseSizeFlag(flags, "max-inflight", "4096", 1, 1 << 24);
  auto conn_inflight =
      ParseSizeFlag(flags, "conn-inflight", "128", 1, 1 << 24);
  auto ingest_watermark =
      ParseSizeFlag(flags, "ingest-watermark", "0", 0, 1 << 24);
  // Observability: --metrics-port (0 = ephemeral) opens the HTTP
  // /metrics listener; --trace-out dumps a Chrome trace at exit;
  // --slow-ms turns on the slow-request log. Either of the latter two
  // enables the tracer.
  const bool metrics_enabled = flags.count("metrics-port") != 0;
  auto metrics_port = ParseSizeFlag(flags, "metrics-port", "0", 0, 65535);
  const std::string trace_out = FlagOr(flags, "trace-out", "");
  auto slow_ms = ParseSizeFlag(flags, "slow-ms", "0", 0, 1 << 24);
  const Status mmap_ok = CheckMmapFlags(flags);
  for (const Status& st :
       {shards.status(), port.status(), io_threads.status(),
        queue_cap.status(), retrain_every.status(), corpus_cap.status(),
        max_inflight.status(), conn_inflight.status(),
        ingest_watermark.status(), metrics_port.status(),
        slow_ms.status(), mmap_ok}) {
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 2;
    }
  }
  auto preloaded = PreloadModel(flags);
  if (!preloaded.ok()) {
    std::cerr << preloaded.status().ToString() << "\n";
    return 1;
  }

  std::vector<OwnedRun> runs;
  std::vector<PipelineRecord> records;
  const Status executed = ExecuteServingWorkload(config, &runs, &records);
  if (!executed.ok()) {
    std::cerr << executed.ToString() << "\n";
    return 1;
  }

  std::shared_ptr<const SelectorStack> stack =
      InitialStack(flags, *preloaded, records, /*default_trees=*/"50");

  ShardedMonitorService::Options service_options;
  service_options.num_shards = *shards;
  ShardedMonitorService service(stack, service_options);

  // The full online loop rides behind the wire: ingest frames land in
  // this queue, the TrainerLoop drains/retrains/hot-swaps, and kStats
  // responses expose the generation bumps mid-connection.
  RecordIngestQueue queue(*queue_cap);
  TrainerLoop::Options trainer_options;
  trainer_options.retrain_min_records = *retrain_every;
  trainer_options.max_corpus = *corpus_cap;
  trainer_options.min_corpus = std::min<size_t>(
      trainer_options.min_corpus, std::max<size_t>(records.size(), 1));
  trainer_options.pool = ParsePool(FlagOr(flags, "pool", "six"));
  trainer_options.params = EstimatorSelector::DefaultParams();
  trainer_options.params.num_trees =
      std::stoi(FlagOr(flags, "trees", "50"));
  trainer_options.snapshot_path = FlagOr(flags, "snapshot-out", "");
  TrainerLoop trainer(&queue, &service, trainer_options);
  trainer.SeedCorpus(records);
  service.SetIngestStatsProvider([&trainer] { return trainer.GetStats(); });
  trainer.Start();

  // The replay corpus OpenRequest.run_index indexes into (modulo).
  std::vector<const QueryRunResult*> run_ptrs;
  run_ptrs.reserve(runs.size());
  for (const OwnedRun& run : runs) run_ptrs.push_back(&run.result);

  // One registry backs every operator surface — the /metrics endpoint,
  // kMetricsDump frames, and the exit table below. The server registers
  // its own counters into it; everything else exports via collectors.
  obs::MetricsRegistry registry;
  RegisterServiceCollector(&registry, &service);
  RegisterFailPointCollector(&registry);
  RegisterSimdCollector(&registry);
  RegisterTracerCollector(&registry);
  if (!trace_out.empty() || *slow_ms > 0) {
    obs::Tracer::Global().Enable();
    obs::Tracer::Global().SetSlowThresholdNs(
        static_cast<uint64_t>(*slow_ms) * 1000000u);
  }

  TcpServer::Options server_options;
  server_options.port = static_cast<uint16_t>(*port);
  server_options.io_threads = *io_threads;
  server_options.max_inflight_total = *max_inflight;
  server_options.max_inflight_per_conn = *conn_inflight;
  server_options.ingest_shed_watermark = *ingest_watermark;
  server_options.metrics = &registry;
  server_options.metrics_port =
      metrics_enabled ? static_cast<int>(*metrics_port) : -1;
  TcpServer server(&service, run_ptrs, &queue, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }

  g_serve_tcp_stop = 0;
  std::signal(SIGTERM, ServeTcpSignalHandler);
  std::signal(SIGINT, ServeTcpSignalHandler);
  // The smoke test (scripts/server_smoke_test.sh) parses this line for
  // the ephemeral port; keep the format stable.
  std::cout << "listening on 127.0.0.1:" << server.port() << " ("
            << service.num_shards() << " shards, " << run_ptrs.size()
            << " runs)" << std::endl;
  if (metrics_enabled) {
    // The smoke test parses this line for the scrape port; keep the
    // format stable.
    std::cout << "metrics on 127.0.0.1:" << server.metrics_port()
              << std::endl;
  }
  while (g_serve_tcp_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  RPE_LOG_INFO << "draining ...";
  // Order matters: the server stops accepting records first, the queue
  // closes so the trainer's final drain sees the tail, then the trainer
  // stops (possibly publishing once more) before stats are read.
  server.Stop();
  queue.Close();
  trainer.Stop();

  if (!trace_out.empty()) {
    const Status wrote = obs::Tracer::Global().WriteChromeTrace(trace_out);
    if (!wrote.ok()) {
      RPE_LOG_WARN << "trace dump failed: " << wrote.ToString();
    }
  }

  // The exit table is the scrape, rendered: server-owned counters first
  // (registration order), then the service/failpoint/simd/tracer
  // collector samples. Scripts regex-match row labels first-hit-wins,
  // which is why the wire-session counters carry no table label (the
  // "sessions opened" row must be the service's).
  TablePrinter table = MetricsTable(registry.Collect());
  table.AddRow({"simd", simd::KernelReport()});
  table.Print();
  return 0;
}

int CmdServeOnline(const std::map<std::string, std::string>& flags) {
  auto parsed = ParseWorkloadFlags(flags, /*default_scale=*/"5",
                                   /*default_queries=*/"40");
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  const WorkloadConfig& config = *parsed;

  // Flag validation happens before the (expensive) workload run: a typo'd
  // serve configuration must fail in milliseconds.
  auto shards = ParseShards(flags);
  auto sessions_flag = ParseSizeFlag(flags, "sessions", "64", 1, 1 << 20);
  auto queue_cap = ParseSizeFlag(flags, "queue-cap", "1024", 1, 1 << 24);
  auto retrain_every =
      ParseSizeFlag(flags, "retrain-every", "48", 0, 1 << 24);
  // TrainerLoop requires max_corpus >= min_corpus (at most 16 here).
  auto corpus_cap = ParseSizeFlag(flags, "corpus-cap", "4096", 16, 1 << 24);
  auto tick_budget = ParseSizeFlag(flags, "tick-budget", "0", 0, 1 << 24);
  auto ingest_per_tick =
      ParseSizeFlag(flags, "ingest-per-tick", "4", 0, 1 << 20);
  const Status mmap_ok = CheckMmapFlags(flags);
  for (const Status& st :
       {shards.status(), sessions_flag.status(), queue_cap.status(),
        retrain_every.status(), corpus_cap.status(), tick_budget.status(),
        ingest_per_tick.status(), mmap_ok}) {
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 2;
    }
  }
  auto preloaded = PreloadModel(flags);
  if (!preloaded.ok()) {
    std::cerr << preloaded.status().ToString() << "\n";
    return 1;
  }

  std::vector<OwnedRun> runs;
  std::vector<PipelineRecord> records;
  const Status executed = ExecuteServingWorkload(config, &runs, &records);
  if (!executed.ok()) {
    std::cerr << executed.ToString() << "\n";
    return 1;
  }

  // The first half of the records seeds the initial stack + corpus; the
  // whole set then cycles through the ingest queue during replay,
  // standing in for the record stream a live system would emit.
  std::vector<PipelineRecord> seed(records.begin(),
                                   records.begin() + records.size() / 2);
  if (seed.empty()) seed = records;
  std::shared_ptr<const SelectorStack> initial =
      InitialStack(flags, *preloaded, seed, /*default_trees=*/"20");

  ShardedMonitorService::Options service_options;
  service_options.num_shards = *shards;
  ShardedMonitorService service(initial, service_options);
  RecordIngestQueue queue(*queue_cap);
  TrainerLoop::Options trainer_options;
  trainer_options.retrain_min_records = *retrain_every;
  trainer_options.max_corpus = *corpus_cap;
  trainer_options.min_corpus = std::min<size_t>(
      trainer_options.min_corpus, std::max<size_t>(seed.size(), 1));
  trainer_options.pool = ParsePool(FlagOr(flags, "pool", "six"));
  trainer_options.params = EstimatorSelector::DefaultParams();
  trainer_options.params.num_trees =
      std::stoi(FlagOr(flags, "trees", "20"));
  trainer_options.snapshot_path = FlagOr(flags, "snapshot-out", "");
  TrainerLoop trainer(&queue, &service, trainer_options);
  trainer.SeedCorpus(seed);
  service.SetIngestStatsProvider([&trainer] { return trainer.GetStats(); });
  trainer.Start();

  // Sessions opened now pin generation 0, so their replay must stay
  // bit-identical to a sequential replay of the initial stack no matter
  // how many swaps land mid-replay.
  const size_t num_sessions = *sessions_flag;
  std::vector<ShardedMonitorService::SessionId> sessions;
  std::vector<const QueryRunResult*> session_runs;
  for (size_t s = 0; s < num_sessions; ++s) {
    const QueryRunResult* run = &runs[s % runs.size()].result;
    auto id = service.OpenSession(run);
    if (!id.ok()) {
      std::cerr << id.status().ToString() << "\n";
      return 1;
    }
    sessions.push_back(*id);
    session_runs.push_back(run);
  }

  // Replay + ingest run concurrently with the trainer: each budgeted tick
  // advances sessions fairly while fresh records stream into the queue.
  size_t stream_next = 0;
  size_t ticks = 0;
  size_t remaining = sessions.size();
  while (remaining > 0) {
    remaining = service.Tick(*tick_budget);
    ++ticks;
    for (size_t i = 0; i < *ingest_per_tick; ++i) {
      queue.Push(records[stream_next++ % records.size()]);
    }
  }
  queue.Close();
  trainer.Stop();  // drains the tail of the queue; may publish once more

  int rc = 0;
  if (flags.count("verify") > 0) {
    ProgressMonitor sequential(&initial->static_selector,
                               &initial->dynamic_selector);
    // Sessions cycle a small run set: replay each distinct run once.
    std::map<const QueryRunResult*, double> expected_final;
    for (const QueryRunResult* run : session_runs) {
      if (expected_final.count(run) == 0) {
        expected_final[run] = sequential.ReplayQueryProgress(*run).back();
      }
    }
    for (size_t s = 0; s < sessions.size(); ++s) {
      const double expected = expected_final.at(session_runs[s]);
      const auto progress = service.Progress(sessions[s]);
      if (!progress.ok() || *progress != expected) {
        std::cerr << "VERIFY FAILED: session " << s
                  << " final progress diverges from the pinned-snapshot "
                     "sequential replay\n";
        rc = 1;
      }
    }
    if (rc == 0) {
      std::cout << "verify: " << sessions.size()
                << " sessions bit-identical to their pinned generation-0 "
                   "snapshot across "
                << service.model_generation() << " hot swaps\n";
    }
  }
  for (ShardedMonitorService::SessionId id : sessions) {
    const Status closed = service.CloseSession(id);
    if (!closed.ok()) std::cerr << closed.ToString() << "\n";
  }

  const ShardedMonitorService::Stats stats = service.GetStats();
  // Registry-driven exit table (same formatter as serve-replay /
  // serve-tcp); "simd" and "ticks" are CLI-local rows, not metrics.
  obs::MetricsRegistry registry;
  RegisterServiceCollector(&registry, &service);
  TablePrinter table = MetricsTable(registry.Collect());
  table.AddRow({"simd", simd::KernelReport()});
  table.AddRow({"ticks", std::to_string(ticks)});
  table.Print();

  if (stats.total.ingest.retrains == 0) {
    std::cerr << "no retrain was published (lower --retrain-every or raise "
                 "--ingest-per-tick)\n";
    return 1;
  }
  return rc;
}

void PrintUsage(std::ostream& out) {
  out << "usage: rpe_cli <command> [--flags]   (see docs/CLI.md)\n"
         "commands:\n"
         "  run            execute a workload and write pipeline records\n"
         "  train          train the selector stack, write a .rpsn model\n"
         "  evaluate       train on one record set, score another\n"
         "  inspect        summarize a record set\n"
         "  snapshot-save  convert CSV records to a binary snapshot\n"
         "  snapshot-load  verify + describe a snapshot\n"
         "  serve-replay   concurrent MonitorService replay of a workload\n"
         "  serve-tcp      epoll TCP front-end over the monitor tier\n"
         "  serve-online   replay + async ingest + background retraining\n"
         "  version        build + SIMD dispatch report (also --version)\n"
         "common flags: --threads N; serve commands also take --shards N\n"
         "(sharded session routing) and --model x.rpsn --mmap (zero-copy\n"
         "snapshot load)\n";
}

/// `version` / `--version`: which SIMD tier was detected, what RPE_SIMD
/// resolved to, and which implementation each dispatched kernel bound —
/// the observable surface of common/simd.h (tests/simd_test.cpp asserts
/// on the same KernelReport string).
int CmdVersion() {
  std::cout << "rpe_cli (journals_pvldb_KonigDCN11 reproduction)\n"
            << "simd: detected=" << simd::TierName(simd::DetectedTier())
            << " " << simd::KernelReport() << "\n";
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(std::cerr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    PrintUsage(std::cout);
    return 0;
  }
  if (cmd == "version" || cmd == "--version") return CmdVersion();
  const auto flags = ParseFlags(argc, argv, 2);
  if (flags.count("threads") > 0) {
    ThreadPool::SetGlobalThreads(std::stoi(flags.at("threads")));
  }
  // Make fault-injection runs self-announcing: RPE_FAILPOINTS armed sites
  // are listed up front so a chaos run is never mistaken for a clean one.
  if (const auto armed = FailPoints::Armed(); !armed.empty()) {
    std::string names;
    for (const auto& name : armed) names += " " + name;
    // Scripts grep the "failpoints armed: <name>" substring; the logger
    // prefix (timestamp/level/tid) is additive, never a replacement.
    RPE_LOG_INFO << "failpoints armed:" << names;
  }
  if (cmd == "run") return CmdRun(flags);
  if (cmd == "train") return CmdTrain(flags);
  if (cmd == "evaluate") return CmdEvaluate(flags);
  if (cmd == "inspect") return CmdInspect(flags);
  if (cmd == "snapshot-save") return CmdSnapshotSave(flags);
  if (cmd == "snapshot-load") return CmdSnapshotLoad(flags);
  if (cmd == "serve-replay") return CmdServeReplay(flags);
  if (cmd == "serve-tcp") return CmdServeTcp(flags);
  if (cmd == "serve-online") return CmdServeOnline(flags);
  std::cerr << "unknown command: " << cmd << "\n";
  return 2;
}

}  // namespace
}  // namespace rpe

int main(int argc, char** argv) { return rpe::Main(argc, argv); }
