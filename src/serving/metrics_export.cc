#include "serving/metrics_export.h"

#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/simd.h"
#include "obs/trace.h"

namespace rpe {
namespace {

using obs::Sample;

}  // namespace

void AppendServiceSamples(const ShardedMonitorService::Stats& stats,
                          std::vector<obs::Sample>* out) {
  const MonitorService::Stats& t = stats.total;
  const IngestStats& in = t.ingest;
  // Table-label ordering note: table_value() in the smoke/exit scripts
  // matches row labels by regex and takes the FIRST hit, so rows whose
  // label is a substring of another ("decisions" / "decisions/sec") must
  // keep the shorter label first.
  out->push_back(Sample::GaugeSample("rpe_shards",
                                     static_cast<double>(stats.shards),
                                     "shards"));
  out->push_back(Sample::CounterSample(
      "rpe_sessions_opened_total", static_cast<double>(t.sessions_opened),
      "sessions opened"));
  out->push_back(Sample::CounterSample(
      "rpe_sessions_completed_total",
      static_cast<double>(t.sessions_completed), "sessions completed"));
  out->push_back(Sample::CounterSample("rpe_decisions_total",
                                       static_cast<double>(t.decisions),
                                       "decisions"));
  out->push_back(Sample::CounterSample(
      "rpe_observations_scored_total",
      static_cast<double>(t.observations_scored), "observations scored"));
  out->push_back(Sample::GaugeSample(
      "rpe_model_generation", static_cast<double>(t.model_generation),
      "model generation"));
  out->push_back(Sample::GaugeSample(
      "rpe_model_generation_min",
      static_cast<double>(stats.min_model_generation)));
  out->push_back(Sample::GaugeSample(
      "rpe_model_generation_max",
      static_cast<double>(stats.max_model_generation)));
  out->push_back(Sample::GaugeSample("rpe_replay_latency_p50_ms",
                                     t.p50_replay_ms,
                                     "p50 replay latency (ms)"));
  out->push_back(Sample::GaugeSample("rpe_replay_latency_p95_ms",
                                     t.p95_replay_ms,
                                     "p95 replay latency (ms)"));
  out->push_back(Sample::GaugeSample("rpe_decisions_per_sec",
                                     t.decisions_per_sec, "decisions/sec"));
  out->push_back(Sample::GaugeSample("rpe_observations_per_sec",
                                     t.observations_per_sec,
                                     "observations/sec"));
  out->push_back(Sample::GaugeSample("rpe_scoring_time_seconds",
                                     t.scoring_time_sec));
  out->push_back(Sample::CounterSample("rpe_ingest_pushed_total",
                                       static_cast<double>(in.pushed),
                                       "records pushed"));
  out->push_back(Sample::CounterSample("rpe_ingest_dropped_total",
                                       static_cast<double>(in.dropped),
                                       "records dropped"));
  out->push_back(Sample::CounterSample("rpe_ingest_drained_total",
                                       static_cast<double>(in.drained),
                                       "records drained"));
  out->push_back(Sample::CounterSample("rpe_ingest_batches_total",
                                       static_cast<double>(in.batches)));
  out->push_back(Sample::CounterSample("rpe_retrains_total",
                                       static_cast<double>(in.retrains),
                                       "retrains published"));
  out->push_back(Sample::CounterSample(
      "rpe_retrain_failures_total",
      static_cast<double>(in.retrain_failures), "retrain failures"));
  out->push_back(Sample::CounterSample(
      "rpe_retrain_recoveries_total",
      static_cast<double>(in.retrain_recoveries), "retrain recoveries"));
  out->push_back(Sample::CounterSample(
      "rpe_snapshot_write_failures_total",
      static_cast<double>(in.snapshot_write_failures),
      "snapshot write failures"));
  out->push_back(Sample::CounterSample(
      "rpe_snapshot_write_retries_total",
      static_cast<double>(in.snapshot_write_retries),
      "snapshot write retries"));
  out->push_back(Sample::CounterSample(
      "rpe_publish_failures_total", static_cast<double>(in.publish_failures),
      "publish failures"));
  out->push_back(Sample::CounterSample(
      "rpe_publish_retries_total", static_cast<double>(in.publish_retries),
      "publish retries"));
  out->push_back(Sample::GaugeSample("rpe_ingest_queue_depth",
                                     static_cast<double>(in.queue_size),
                                     "ingest queue"));
  out->push_back(Sample::GaugeSample("rpe_training_corpus_size",
                                     static_cast<double>(in.corpus_size),
                                     "training corpus"));
  out->push_back(Sample::GaugeSample("rpe_last_retrain_ms",
                                     in.last_retrain_ms,
                                     "last retrain (ms)"));
  out->push_back(Sample::GaugeSample(
      "rpe_last_swap_generation",
      static_cast<double>(in.last_swap_generation)));
}

int RegisterServiceCollector(obs::MetricsRegistry* registry,
                             ShardedMonitorService* service) {
  return registry->AddCollector([service](std::vector<Sample>* out) {
    AppendServiceSamples(service->GetStats(), out);
    for (size_t i = 0; i < service->num_shards(); ++i) {
      out->push_back(Sample::GaugeSample(
          "rpe_shard_sessions_open",
          static_cast<double>(service->shard(i).num_open_sessions()), "",
          "shard=\"" + std::to_string(i) + "\""));
    }
  });
}

int RegisterFailPointCollector(obs::MetricsRegistry* registry) {
  return registry->AddCollector([](std::vector<Sample>* out) {
    for (const FailPointSnapshot& fp : FailPoints::Snapshot()) {
      const std::string label = "name=\"" + fp.name + "\"";
      out->push_back(Sample::CounterSample("rpe_failpoint_hits_total",
                                           static_cast<double>(fp.hits), "",
                                           label));
      out->push_back(Sample::CounterSample("rpe_failpoint_trips_total",
                                           static_cast<double>(fp.trips),
                                           "", label));
    }
  });
}

int RegisterSimdCollector(obs::MetricsRegistry* registry) {
  return registry->AddCollector([](std::vector<Sample>* out) {
    out->push_back(Sample::GaugeSample(
        "rpe_simd_tier_info", 1.0, "",
        "tier=\"" + std::string(simd::TierName(simd::ActiveTier())) +
            "\""));
  });
}

int RegisterTracerCollector(obs::MetricsRegistry* registry) {
  return registry->AddCollector([](std::vector<Sample>* out) {
    const obs::Tracer& tracer = obs::Tracer::Global();
    out->push_back(Sample::CounterSample(
        "rpe_trace_spans_total",
        static_cast<double>(tracer.events_recorded())));
    out->push_back(Sample::CounterSample(
        "rpe_slow_requests_total",
        static_cast<double>(tracer.slow_requests())));
  });
}

}  // namespace rpe
