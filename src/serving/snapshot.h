// Binary snapshot layer for the serving stack: a versioned, checksummed
// container for (a) trained selector stacks — the static + dynamic
// EstimatorSelector pair a ProgressMonitor runs on — and (b) batches of
// PipelineRecord training data. Snapshots replace the text/CSV persistence
// path on the hot load path: doubles are stored as raw IEEE-754 bits (so
// round-trips are bit-exact by construction, not by printf precision), all
// numeric arrays are contiguous little-endian slabs (mmap-friendly: a
// future reader can point straight into the payload), and the payload is
// guarded by a CRC-32 so corruption or truncation is rejected before any
// field is decoded.
//
// Container layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic  "RPSN" (0x4E535052)
//   4       4     format version (kSnapshotVersion)
//   8       4     payload kind (SnapshotKind)
//   12      4     reserved (0)
//   16      8     payload size in bytes
//   24      4     CRC-32 of the payload bytes
//   28      4     reserved (0)   — header is 32 bytes, payload 8-aligned
//   32      ...   payload
//
// Selector-stack payload: feature-schema metadata (count, static count,
// names — validated against the running binary's FeatureSchema at load),
// then the static and dynamic selectors back to back; each selector is its
// pool, feature mode, and per-candidate MART models with trees stored as
// structure-of-arrays node slabs. The flat scoring buffers
// (FlatEnsembleSet) are recompiled at load — compilation is deterministic
// from the models, so storing them would duplicate state that must never
// disagree.
//
// Record-batch payload: feature/estimator arity header (validated against
// the schema at load) followed by the records.
//
// Threading contract: all functions here are stateless and thread-safe;
// encode/decode touch only their arguments. A decoded SelectorStack is
// immutable and safe to share across threads (the serving layer wraps it
// in shared_ptr<const SelectorStack>).
//
// Error behavior: snapshots are untrusted input. Decode/Load functions
// never abort on malformed bytes — bad magic, version or kind skew, CRC
// mismatch, truncation, schema mismatch, and hostile model payloads all
// return a descriptive Status before any decoded field is used.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "selection/record.h"
#include "selection/selector.h"

namespace rpe {

inline constexpr uint32_t kSnapshotMagic = 0x4E535052;  // "RPSN"
inline constexpr uint32_t kSnapshotVersion = 1;

enum class SnapshotKind : uint32_t {
  kSelectorStack = 1,
  kRecordBatch = 2,
};

/// \brief The trained model pair the serving layer runs on: static-feature
/// selector for initial choices, dynamic-feature selector for revisions.
struct SelectorStack {
  EstimatorSelector static_selector;
  EstimatorSelector dynamic_selector;

  /// Train both selectors of the stack on one record set (the static one
  /// on the static feature prefix, the dynamic one on the full vector).
  static SelectorStack Train(
      const std::vector<PipelineRecord>& records, std::vector<size_t> pool,
      const MartParams& params = EstimatorSelector::DefaultParams());
};

/// In-memory encode/decode (the file functions below wrap these).
std::string EncodeSelectorStack(const SelectorStack& stack);
Result<SelectorStack> DecodeSelectorStack(std::string_view bytes);
std::string EncodeRecordBatch(const std::vector<PipelineRecord>& records);
Result<std::vector<PipelineRecord>> DecodeRecordBatch(std::string_view bytes);

/// Kind of a snapshot buffer/file without decoding the payload (CRC is
/// still verified).
Result<SnapshotKind> PeekSnapshotKind(std::string_view bytes);
Result<SnapshotKind> PeekSnapshotFileKind(const std::string& path);

/// Raw snapshot bytes from disk, so a caller can Peek and Decode the same
/// buffer without reading (and CRC-checking) the file twice.
Result<std::string> ReadSnapshotFile(const std::string& path);

Status SaveSelectorStack(const SelectorStack& stack, const std::string& path);
Result<SelectorStack> LoadSelectorStack(const std::string& path);
Status SaveRecordBatch(const std::vector<PipelineRecord>& records,
                       const std::string& path);
Result<std::vector<PipelineRecord>> LoadRecordBatch(const std::string& path);

}  // namespace rpe
