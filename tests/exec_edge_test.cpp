// Edge-case execution tests: empty inputs, single-row tables, degenerate
// predicates, plan-validation failures, and unusual operator compositions.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "storage/datagen.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;

class ExecEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeSmallCatalog();
    // An empty table and a single-row table for boundary cases.
    auto empty = std::make_unique<Table>("t_empty", Schema({{"e", 8}}));
    RPE_CHECK_OK(catalog_->AddTable(std::move(empty)));
    auto one = std::make_unique<Table>("t_one", Schema({{"o", 8}}));
    RPE_CHECK_OK(one->Append({42}));
    RPE_CHECK_OK(catalog_->AddTable(std::move(one)));
    RPE_CHECK_OK(catalog_->CreateIndex("t_empty", "e"));
    RPE_CHECK_OK(catalog_->CreateIndex("t_one", "o"));
  }

  QueryRunResult Run(std::unique_ptr<PlanNode> root) {
    auto plan = FinalizePlan(std::move(root), *catalog_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    plans_.push_back(std::move(plan).ValueOrDie());
    auto result = ExecutePlan(*plans_.back(), *catalog_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).ValueOrDie();
  }

  std::unique_ptr<Catalog> catalog_;
  std::vector<std::unique_ptr<PhysicalPlan>> plans_;
};

TEST_F(ExecEdgeTest, EmptyTableScan) {
  auto run = Run(MakeTableScan("t_empty"));
  EXPECT_EQ(run.rows_out, 0u);
  EXPECT_GE(run.observations.size(), 1u);  // the final sample
}

TEST_F(ExecEdgeTest, EmptyBuildSideHashJoin) {
  auto run = Run(MakeHashJoin(MakeTableScan("t_empty"),
                              MakeTableScan("t_fact"), 0, 0));
  EXPECT_EQ(run.rows_out, 0u);
}

TEST_F(ExecEdgeTest, EmptyProbeSideHashJoin) {
  auto run = Run(MakeHashJoin(MakeTableScan("t_dim"),
                              MakeTableScan("t_empty"), 0, 0));
  EXPECT_EQ(run.rows_out, 0u);
}

TEST_F(ExecEdgeTest, EmptyOuterNestedLoop) {
  auto run = Run(MakeNestedLoopJoin(MakeTableScan("t_empty"),
                                    MakeIndexSeek("t_dim", "d_id"), 0));
  EXPECT_EQ(run.rows_out, 0u);
}

TEST_F(ExecEdgeTest, SingleRowJoins) {
  // t_one joined with itself on its only column.
  auto run = Run(MakeHashJoin(MakeTableScan("t_one"), MakeTableScan("t_one"),
                              0, 0));
  EXPECT_EQ(run.rows_out, 1u);
}

TEST_F(ExecEdgeTest, SortOfEmptyInput) {
  auto run = Run(MakeSort(MakeTableScan("t_empty"), 0));
  EXPECT_EQ(run.rows_out, 0u);
}

TEST_F(ExecEdgeTest, AggregateOfEmptyInput) {
  auto run = Run(MakeHashAggregate(MakeTableScan("t_empty"), {0}));
  EXPECT_EQ(run.rows_out, 0u);
  auto run2 = Run(MakeStreamAggregate(MakeTableScan("t_empty"), {0}));
  EXPECT_EQ(run2.rows_out, 0u);
}

TEST_F(ExecEdgeTest, MergeJoinWithEmptySide) {
  auto run = Run(MakeMergeJoin(MakeSort(MakeTableScan("t_empty"), 0),
                               MakeSort(MakeTableScan("t_fact"), 1), 0, 1));
  EXPECT_EQ(run.rows_out, 0u);
}

TEST_F(ExecEdgeTest, FilterRejectingEverything) {
  auto run = Run(MakeFilter(MakeTableScan("t_fact"), Predicate::Eq(2, -777)));
  EXPECT_EQ(run.rows_out, 0u);
  // The scan still ran in full.
  EXPECT_EQ(run.true_n[1], 1000.0);
}

TEST_F(ExecEdgeTest, FilterAcceptingEverything) {
  auto run = Run(MakeFilter(MakeTableScan("t_fact"), Predicate::True()));
  EXPECT_EQ(run.rows_out, 1000u);
}

TEST_F(ExecEdgeTest, TopLargerThanInput) {
  auto run = Run(MakeTop(MakeTableScan("t_dim"), 100000));
  EXPECT_EQ(run.rows_out, 100u);
}

TEST_F(ExecEdgeTest, TopOverJoinStopsEarly) {
  auto run = Run(MakeTop(
      MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0, 1),
      10));
  EXPECT_EQ(run.rows_out, 10u);
  // The probe side must not have been fully consumed (early termination):
  // node ids: 0=Top, 1=HashJoin, 2=build scan, 3=probe scan.
  EXPECT_LT(run.true_n[3], 1000.0);
}

TEST_F(ExecEdgeTest, BatchSortBatchLargerThanInput) {
  auto run = Run(MakeBatchSort(MakeTableScan("t_dim"), 1, 100000));
  EXPECT_EQ(run.rows_out, 100u);
}

TEST_F(ExecEdgeTest, BatchSizeOneDegeneratesToPassThrough) {
  auto run = Run(MakeBatchSort(MakeTableScan("t_dim"), 1, 1));
  EXPECT_EQ(run.rows_out, 100u);
}

TEST_F(ExecEdgeTest, NestedBlockingOperators) {
  // Sort over hash aggregate over sort: three pipeline breakers stacked.
  auto root = MakeSort(
      MakeHashAggregate(MakeSort(MakeTableScan("t_fact"), 2), {2}), 1);
  auto run = Run(std::move(root));
  EXPECT_EQ(run.rows_out, 50u);  // 50 distinct f_val groups
  EXPECT_GE(run.pipelines.size(), 3u);
}

TEST_F(ExecEdgeTest, StreamAggregateMultiColumnGroups) {
  // Group by (f_fk, f_val) over input sorted by f_fk with full-row
  // tiebreak: hash and stream must agree since the tiebreak sorts all
  // columns after the key.
  auto hash_run = Run(MakeHashAggregate(MakeTableScan("t_fact"), {1, 2}));
  EXPECT_GT(hash_run.rows_out, 50u);
}

// --- plan validation --------------------------------------------------------

TEST_F(ExecEdgeTest, FinalizeRejectsMissingTable) {
  auto plan = FinalizePlan(MakeTableScan("nope"), *catalog_);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecEdgeTest, FinalizeRejectsMissingIndex) {
  auto plan = FinalizePlan(MakeIndexSeek("t_fact", "f_val"), *catalog_);
  EXPECT_FALSE(plan.ok());
}

TEST_F(ExecEdgeTest, FinalizeRejectsBadColumnRefs) {
  // Join key out of range.
  auto root = MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"),
                           99, 1);
  EXPECT_FALSE(FinalizePlan(std::move(root), *catalog_).ok());
  // Filter column out of range.
  auto root2 = MakeFilter(MakeTableScan("t_one"), Predicate::Eq(3, 1));
  EXPECT_FALSE(FinalizePlan(std::move(root2), *catalog_).ok());
  // Aggregate without group columns.
  auto root3 = MakeHashAggregate(MakeTableScan("t_dim"), {});
  EXPECT_FALSE(FinalizePlan(std::move(root3), *catalog_).ok());
  // Top with zero limit.
  auto root4 = MakeTop(MakeTableScan("t_dim"), 0);
  EXPECT_FALSE(FinalizePlan(std::move(root4), *catalog_).ok());
  // BatchSort with zero batch size.
  auto root5 = MakeBatchSort(MakeTableScan("t_dim"), 0, 0);
  EXPECT_FALSE(FinalizePlan(std::move(root5), *catalog_).ok());
}

TEST_F(ExecEdgeTest, PlanToStringContainsOperatorsAndTables) {
  auto plan = FinalizePlan(
      MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0, 1),
      *catalog_);
  ASSERT_TRUE(plan.ok());
  const std::string s = (*plan)->ToString();
  EXPECT_NE(s.find("HashJoin"), std::string::npos);
  EXPECT_NE(s.find("t_dim"), std::string::npos);
  EXPECT_NE(s.find("t_fact"), std::string::npos);
}

TEST_F(ExecEdgeTest, SeekOnEmptyIndexYieldsNoRows) {
  auto run = Run(MakeNestedLoopJoin(MakeTableScan("t_one"),
                                    MakeIndexSeek("t_empty", "e"), 0));
  EXPECT_EQ(run.rows_out, 0u);
}

}  // namespace
}  // namespace rpe
