#include "common/table_printer.h"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/logging.h"

namespace rpe {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  RPE_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

TablePrinter MetricsTable(const std::vector<obs::Sample>& samples) {
  TablePrinter table({"Metric", "Value"});
  for (const obs::Sample& s : samples) {
    if (s.table_label.empty()) continue;
    std::string value;
    const auto as_int = static_cast<long long>(s.value);
    if (s.value == static_cast<double>(as_int)) {
      value = std::to_string(as_int);
    } else {
      value = TablePrinter::Fmt(s.value, 3);
    }
    table.AddRow({s.table_label, std::move(value)});
  }
  return table;
}

}  // namespace rpe
