#!/usr/bin/env bash
# CLI exit-code contract tests (wired into ctest as `cli_exit_codes`):
#
#   1. snapshot-load / serve-replay --mmap / serve-online --mmap on a
#      corrupt, truncated, or missing .rpsn must exit nonzero with the
#      Status on stderr — and must fail fast, before any workload runs.
#   2. serve-online with the snapshot-write failpoint armed at 100% via
#      RPE_FAILPOINTS must still exit zero, keep serving on the published
#      generations, and report exact nonzero failure/retry counts.
#   3. A malformed RPE_FAILPOINTS spec is diagnosed, ignored, and must
#      not turn into silent fault injection.
#
# Usage: cli_exit_test.sh <path-to-rpe_cli>
set -u

CLI="${1:?usage: cli_exit_test.sh <path-to-rpe_cli>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/rpe_cli_exit.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

fails=0
note() { printf '%s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*"; fails=$((fails + 1)); }

# expect_err <expected-status-substr> <cmd...>: nonzero exit + Status text
# on stderr.
expect_err() {
  local needle="$1"; shift
  local err="$WORK/stderr.txt"
  if "$@" >"$WORK/stdout.txt" 2>"$err"; then
    fail "exit 0 from: $*"
    return
  fi
  if ! grep -q "$needle" "$err"; then
    fail "stderr of '$*' lacks '$needle': $(cat "$err")"
  fi
}

# --- corrupt / truncated / missing snapshot inputs ------------------------
CORRUPT="$WORK/corrupt.rpsn"
printf 'RPSN garbage garbage garbage garbage garbage' > "$CORRUPT"
TRUNC="$WORK/trunc.rpsn"
head -c 20 "$CORRUPT" > "$TRUNC"
MISSING="$WORK/no_such_file.rpsn"

for f in "$CORRUPT" "$TRUNC"; do
  expect_err "InvalidArgument" "$CLI" snapshot-load --in "$f"
done
expect_err "IOError" "$CLI" snapshot-load --in "$MISSING"

# The serve commands must reject a bad --model up front (fail-fast: these
# return within the preload, so a tiny workload config keeps them honest).
# serve-tcp is included: a corrupt model must fail before the socket ever
# binds, so nothing is listening when the Status lands on stderr.
for cmd in serve-replay serve-online serve-tcp; do
  expect_err "InvalidArgument" \
    "$CLI" "$cmd" --kind tpch --queries 2 --scale 1 --model "$CORRUPT" --mmap
  expect_err "IOError" \
    "$CLI" "$cmd" --kind tpch --queries 2 --scale 1 --model "$MISSING" --mmap
  expect_err "InvalidArgument" \
    "$CLI" "$cmd" --kind tpch --queries 2 --scale 1 --model "$CORRUPT"
done

# --mmap without --model is a flag error (exit 2), also pre-workload.
for cmd in serve-replay serve-tcp; do
  "$CLI" "$cmd" --kind tpch --queries 2 --scale 1 --mmap \
    >/dev/null 2>&1
  [ $? -eq 2 ] || fail "$cmd: --mmap without --model did not exit 2"
done

# serve-tcp flag contract: malformed or out-of-range values exit 2 with a
# pointer at the docs, before any workload work starts.
expect_err "invalid --port" \
  "$CLI" serve-tcp --kind tpch --queries 2 --scale 1 --port 70000
expect_err "invalid --port" \
  "$CLI" serve-tcp --kind tpch --queries 2 --scale 1 --port banana
expect_err "invalid --io-threads" \
  "$CLI" serve-tcp --kind tpch --queries 2 --scale 1 --io-threads 9999
expect_err "invalid --shards" \
  "$CLI" serve-tcp --kind tpch --queries 2 --scale 1 --shards 0
"$CLI" serve-tcp --kind tpch --queries 2 --scale 1 --port 70000 \
  >/dev/null 2>&1
[ $? -eq 2 ] || fail "serve-tcp bad --port did not exit 2"

# --- serve-online under a 100% snapshot-write fault -----------------------
OUT="$WORK/serve_online.txt"
ERR="$WORK/serve_online_err.txt"
if ! RPE_FAILPOINTS="snapshot.write=always" \
    "$CLI" serve-online --kind tpch --queries 8 --scale 2 --sessions 8 \
    --retrain-every 8 --ingest-per-tick 8 --trees 5 \
    --snapshot-out "$WORK/snap.rpsn" >"$OUT" 2>"$ERR"; then
  fail "serve-online exited nonzero under snapshot.write=always:
$(cat "$ERR")"
else
  grep -q "failpoints armed: snapshot.write" "$ERR" \
    || fail "armed-failpoint banner missing from stderr"
  # The summary must carry exact, nonzero failure and retry counts, and
  # retrains must still have been published (serving degraded, not down).
  awk -F'|' '/snapshot write failures/ {gsub(/ /,"",$3); print $3}' "$OUT" \
    | grep -qE '^[1-9][0-9]*$' \
    || fail "snapshot write failures not reported nonzero: $(cat "$OUT")"
  awk -F'|' '/snapshot write retries/ {gsub(/ /,"",$3); print $3}' "$OUT" \
    | grep -qE '^[1-9][0-9]*$' \
    || fail "snapshot write retries not reported nonzero"
  awk -F'|' '/retrains published/ {gsub(/ /,"",$3); print $3}' "$OUT" \
    | grep -qE '^[1-9][0-9]*$' \
    || fail "no retrain published under snapshot-write fault"
  [ -e "$WORK/snap.rpsn" ] && fail "failed snapshot write left a file"
fi

# --- malformed RPE_FAILPOINTS is diagnosed and ignored --------------------
if ! RPE_FAILPOINTS="snapshot.write=exploded" \
    "$CLI" snapshot-load --in "$MISSING" 2>"$ERR"; then
  grep -q "RPE_FAILPOINTS ignored" "$ERR" \
    || fail "malformed RPE_FAILPOINTS not diagnosed: $(cat "$ERR")"
  grep -q "failpoints armed" "$ERR" \
    && fail "malformed RPE_FAILPOINTS still armed something"
else
  fail "snapshot-load on a missing file exited zero"
fi

if [ "$fails" -ne 0 ]; then
  note "$fails CLI exit-code check(s) failed"
  exit 1
fi
note "all CLI exit-code checks passed"
