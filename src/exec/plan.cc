#include "exec/plan.h"

#include <sstream>

#include "common/logging.h"

namespace rpe {

namespace {
void CollectPreorder(PlanNode* node, std::vector<const PlanNode*>* out) {
  node->id = static_cast<int>(out->size());
  out->push_back(node);
  for (auto& c : node->children) CollectPreorder(c.get(), out);
}

void PrintNode(const PlanNode* node, int depth, std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) *out << "  ";
  *out << "#" << node->id << " " << OpTypeName(node->op);
  if (!node->table.empty()) *out << "(" << node->table << ")";
  *out << " est=" << node->est_rows << "\n";
  for (const auto& c : node->children) PrintNode(c.get(), depth + 1, out);
}
}  // namespace

PhysicalPlan::PhysicalPlan(std::unique_ptr<PlanNode> root)
    : root_(std::move(root)) {
  RPE_CHECK(root_ != nullptr);
  CollectPreorder(root_.get(), &nodes_);
}

double PhysicalPlan::TotalEstimatedRows() const {
  double total = 0.0;
  for (const auto* n : nodes_) total += n->est_rows;
  return total;
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream out;
  PrintNode(root_.get(), 0, &out);
  return out.str();
}

std::unique_ptr<PlanNode> MakeTableScan(const std::string& table,
                                        Predicate pred) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kTableScan;
  n->table = table;
  n->pred = pred;
  return n;
}

std::unique_ptr<PlanNode> MakeIndexScan(const std::string& table,
                                        const std::string& column) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kIndexScan;
  n->table = table;
  n->index_column = column;
  return n;
}

std::unique_ptr<PlanNode> MakeIndexSeek(const std::string& table,
                                        const std::string& column) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kIndexSeek;
  n->table = table;
  n->index_column = column;
  return n;
}

std::unique_ptr<PlanNode> MakeFilter(std::unique_ptr<PlanNode> child,
                                     Predicate pred) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kFilter;
  n->pred = pred;
  n->children.push_back(std::move(child));
  return n;
}

std::unique_ptr<PlanNode> MakeNestedLoopJoin(std::unique_ptr<PlanNode> outer,
                                             std::unique_ptr<PlanNode> inner,
                                             size_t outer_key) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kNestedLoopJoin;
  n->left_key = outer_key;
  n->children.push_back(std::move(outer));
  n->children.push_back(std::move(inner));
  return n;
}

std::unique_ptr<PlanNode> MakeHashJoin(std::unique_ptr<PlanNode> build,
                                       std::unique_ptr<PlanNode> probe,
                                       size_t build_key, size_t probe_key) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kHashJoin;
  n->left_key = build_key;
  n->right_key = probe_key;
  n->children.push_back(std::move(build));
  n->children.push_back(std::move(probe));
  return n;
}

std::unique_ptr<PlanNode> MakeMergeJoin(std::unique_ptr<PlanNode> left,
                                        std::unique_ptr<PlanNode> right,
                                        size_t left_key, size_t right_key) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kMergeJoin;
  n->left_key = left_key;
  n->right_key = right_key;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> child,
                                   size_t sort_key) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kSort;
  n->sort_key = sort_key;
  n->children.push_back(std::move(child));
  return n;
}

std::unique_ptr<PlanNode> MakeBatchSort(std::unique_ptr<PlanNode> child,
                                        size_t sort_key, size_t batch_size) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kBatchSort;
  n->sort_key = sort_key;
  n->batch_size = batch_size;
  n->children.push_back(std::move(child));
  return n;
}

std::unique_ptr<PlanNode> MakeHashAggregate(std::unique_ptr<PlanNode> child,
                                            std::vector<size_t> group_cols) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kHashAggregate;
  n->group_cols = std::move(group_cols);
  n->children.push_back(std::move(child));
  return n;
}

std::unique_ptr<PlanNode> MakeStreamAggregate(std::unique_ptr<PlanNode> child,
                                              std::vector<size_t> group_cols) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kStreamAggregate;
  n->group_cols = std::move(group_cols);
  n->children.push_back(std::move(child));
  return n;
}

std::unique_ptr<PlanNode> MakeTop(std::unique_ptr<PlanNode> child,
                                  uint64_t limit) {
  auto n = std::make_unique<PlanNode>();
  n->op = OpType::kTop;
  n->limit = limit;
  n->children.push_back(std::move(child));
  return n;
}

}  // namespace rpe
