#include "serving/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "selection/features.h"

namespace rpe {
namespace {

static_assert(std::endian::native == std::endian::little,
              "snapshot encode/decode assumes a little-endian host");

constexpr size_t kHeaderSize = 32;

// ---------------------------------------------------------------------------
// Byte-level writer/reader. The writer appends POD scalars and slabs to a
// growing string; the reader is bounds-checked and returns Status on any
// out-of-range access, so a truncated or hostile payload can never read
// past the buffer.

class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }

  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  template <typename T>
  void Slab(const std::vector<T>& xs) {
    static_assert(std::is_trivially_copyable_v<T>);
    U32(static_cast<uint32_t>(xs.size()));
    Raw(xs.data(), xs.size() * sizeof(T));
  }

 private:
  void Raw(const void* data, size_t size) {
    out_->append(static_cast<const char*>(data), size);
  }
  std::string* out_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Status U32(uint32_t* v) { return Raw(v, sizeof *v); }
  Status U64(uint64_t* v) { return Raw(v, sizeof *v); }
  Status I32(int32_t* v) { return Raw(v, sizeof *v); }
  Status F64(double* v) { return Raw(v, sizeof *v); }

  Status Str(std::string* s) {
    uint32_t size = 0;
    RPE_RETURN_NOT_OK(U32(&size));
    if (size > Remaining()) return Truncated();
    s->assign(bytes_.data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }

  template <typename T>
  Status Slab(std::vector<T>* xs, size_t max_count = 1u << 28) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint32_t count = 0;
    RPE_RETURN_NOT_OK(U32(&count));
    if (count > max_count || count * sizeof(T) > Remaining()) {
      return Truncated();
    }
    xs->resize(count);
    return Raw(xs->data(), count * sizeof(T));
  }

  size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  Status Raw(void* v, size_t size) {
    if (size > Remaining()) return Truncated();
    // An empty slab decodes to a vector whose data() may be null; memcpy
    // requires non-null pointers even for size 0.
    if (size != 0) std::memcpy(v, bytes_.data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }
  static Status Truncated() {
    return Status::InvalidArgument("snapshot payload truncated");
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Container framing.

/// Container CRC: v1 covered the payload only; v2 additionally folds the
/// aux-offset header field in first — it steers both loaders, so a bit
/// flip there must read as corruption, not as a confusing structural
/// error deep in the aux parser.
uint32_t FrameCrc(uint32_t version, uint32_t aux_offset,
                  std::string_view payload) {
  uint32_t crc = 0;
  if (version != kSnapshotVersionLegacy) {
    crc = Crc32(&aux_offset, sizeof aux_offset);
  }
  return Crc32(payload.data(), payload.size(), crc);
}

std::string Frame(SnapshotKind kind, std::string payload,
                  uint32_t aux_offset = 0,
                  uint32_t version = kSnapshotVersion) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  Writer w(&out);
  w.U32(kSnapshotMagic);
  w.U32(version);
  w.U32(static_cast<uint32_t>(kind));
  w.U32(0);
  w.U64(payload.size());
  w.U32(FrameCrc(version, aux_offset, payload));
  w.U32(aux_offset);
  out += payload;
  return out;
}

Result<std::string_view> UnframeAs(SnapshotKind want, std::string_view bytes) {
  RPE_ASSIGN_OR_RETURN(SnapshotFrame frame, UnframeSnapshot(bytes));
  if (frame.kind != want) {
    return Status::InvalidArgument("snapshot holds a different payload kind");
  }
  return frame.payload;
}

// ---------------------------------------------------------------------------
// MART model payloads. Trees are stored as parallel per-field slabs
// (structure of arrays) so a loader — or a future zero-copy reader — gets
// each field as one contiguous run.

void EncodeModel(const MartModel& model, Writer* w) {
  w->F64(model.bias());
  w->F64(model.learning_rate());
  w->Slab(model.feature_gains());
  w->U32(static_cast<uint32_t>(model.trees().size()));
  for (const RegressionTree& tree : model.trees()) {
    const auto& nodes = tree.nodes();
    std::vector<int32_t> feature(nodes.size()), left(nodes.size()),
        right(nodes.size());
    std::vector<double> threshold(nodes.size()), value(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      feature[i] = nodes[i].feature;
      threshold[i] = nodes[i].threshold;
      left[i] = nodes[i].left;
      right[i] = nodes[i].right;
      value[i] = nodes[i].value;
    }
    w->Slab(feature);
    w->Slab(threshold);
    w->Slab(left);
    w->Slab(right);
    w->Slab(value);
  }
}

Result<MartModel> DecodeModel(Reader* r) {
  double bias = 0.0, learning_rate = 0.0;
  std::vector<double> gains;
  uint32_t num_trees = 0;
  RPE_RETURN_NOT_OK(r->F64(&bias));
  RPE_RETURN_NOT_OK(r->F64(&learning_rate));
  RPE_RETURN_NOT_OK(r->Slab(&gains));
  RPE_RETURN_NOT_OK(r->U32(&num_trees));
  std::vector<RegressionTree> trees;
  // Cap the speculative reserve: the count is untrusted (CRC only proves
  // integrity, not sanity), and a truncated body fails fast below anyway.
  trees.reserve(std::min<uint32_t>(num_trees, 4096));
  for (uint32_t t = 0; t < num_trees; ++t) {
    std::vector<int32_t> feature, left, right;
    std::vector<double> threshold, value;
    RPE_RETURN_NOT_OK(r->Slab(&feature));
    RPE_RETURN_NOT_OK(r->Slab(&threshold));
    RPE_RETURN_NOT_OK(r->Slab(&left));
    RPE_RETURN_NOT_OK(r->Slab(&right));
    RPE_RETURN_NOT_OK(r->Slab(&value));
    if (threshold.size() != feature.size() || left.size() != feature.size() ||
        right.size() != feature.size() || value.size() != feature.size()) {
      return Status::InvalidArgument("snapshot tree slab length mismatch");
    }
    std::vector<RegressionTree::Node> nodes(feature.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      nodes[i].feature = feature[i];
      nodes[i].threshold = threshold[i];
      nodes[i].left = left[i];
      nodes[i].right = right[i];
      nodes[i].value = value[i];
    }
    RPE_ASSIGN_OR_RETURN(RegressionTree tree,
                         RegressionTree::FromNodes(std::move(nodes)));
    trees.push_back(std::move(tree));
  }
  return MartModel::FromParts(bias, learning_rate, std::move(trees),
                              std::move(gains));
}

void EncodeSelector(const EstimatorSelector& selector, Writer* w) {
  w->U32(selector.uses_dynamic_features() ? 1 : 0);
  std::vector<uint64_t> pool(selector.pool().begin(), selector.pool().end());
  w->Slab(pool);
  w->U32(static_cast<uint32_t>(selector.models().size()));
  for (const MartModel& model : selector.models()) EncodeModel(model, w);
}

Result<EstimatorSelector> DecodeSelector(Reader* r) {
  uint32_t use_dynamic = 0, num_models = 0;
  std::vector<uint64_t> pool64;
  RPE_RETURN_NOT_OK(r->U32(&use_dynamic));
  RPE_RETURN_NOT_OK(r->Slab(&pool64));
  RPE_RETURN_NOT_OK(r->U32(&num_models));
  if (num_models != pool64.size()) {
    return Status::InvalidArgument("snapshot selector pool/model mismatch");
  }
  std::vector<MartModel> models;
  models.reserve(num_models);
  for (uint32_t m = 0; m < num_models; ++m) {
    RPE_ASSIGN_OR_RETURN(MartModel model, DecodeModel(r));
    models.push_back(std::move(model));
  }
  std::vector<size_t> pool(pool64.begin(), pool64.end());
  return EstimatorSelector::FromModels(std::move(pool), use_dynamic != 0,
                                       std::move(models));
}

// Feature metadata: the snapshot pins the schema it was trained under; a
// load into a binary whose FeatureSchema differs (renamed, reordered or
// recounted features) must fail rather than silently mis-index.
void EncodeSchema(Writer* w) {
  const FeatureSchema& schema = FeatureSchema::Get();
  w->U32(static_cast<uint32_t>(schema.num_features()));
  w->U32(static_cast<uint32_t>(schema.num_static_features()));
  for (const std::string& name : schema.names()) w->Str(name);
}

Status DecodeAndCheckSchema(Reader* r) {
  const FeatureSchema& schema = FeatureSchema::Get();
  uint32_t num_features = 0, num_static = 0;
  RPE_RETURN_NOT_OK(r->U32(&num_features));
  RPE_RETURN_NOT_OK(r->U32(&num_static));
  if (num_features != schema.num_features() ||
      num_static != schema.num_static_features()) {
    return Status::InvalidArgument(
        "snapshot feature schema disagrees with this binary: " +
        std::to_string(num_features) + "/" + std::to_string(num_static) +
        " features vs " + std::to_string(schema.num_features()) + "/" +
        std::to_string(schema.num_static_features()));
  }
  for (size_t f = 0; f < schema.num_features(); ++f) {
    std::string name;
    RPE_RETURN_NOT_OK(r->Str(&name));
    if (name != schema.name(f)) {
      return Status::InvalidArgument("snapshot feature " + std::to_string(f) +
                                     " is '" + name + "', expected '" +
                                     schema.name(f) + "'");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Compiled-flat aux section (v2): the FlatEnsembleSet tables of both
// selectors, every slab 8-aligned relative to the payload start so the
// zero-copy loader (serving/mmap_arena.cc, which mirrors this layout) can
// point Slab views straight into the mapping. Scalars are written
// unaligned (readers memcpy them); only slab data is padded.

class AuxWriter {
 public:
  explicit AuxWriter(std::string* out) : out_(out) {}

  void Pad8() { out_->append((8 - out_->size() % 8) % 8, '\0'); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }

  /// 8-aligned slab: u64 count (guard slots included), padding, raw data,
  /// then `guard` zeroed elements.
  template <typename T>
  void AlignedSlab(const Slab<T>& s, size_t guard = 0) {
    static_assert(alignof(T) <= 8);
    U64(s.size() + guard);
    Pad8();
    Raw(s.data(), s.size() * sizeof(T));
    out_->append(guard * sizeof(T), '\0');
  }

 private:
  void Raw(const void* data, size_t size) {
    out_->append(static_cast<const char*>(data), size);
  }
  std::string* out_;
};

void EncodeFlatQsTables(const flat_internal::QuickScorerModel& qs,
                        AuxWriter* w) {
  w->F64(qs.bias);
  w->I32(qs.num_trees);
  w->I32(qs.num_features);
  w->AlignedSlab(qs.feat_begin);
  w->AlignedSlab(qs.threshold);
  w->AlignedSlab(qs.entry_tree);
  w->AlignedSlab(qs.entry_mask);
  w->AlignedSlab(qs.init_mask);
  w->AlignedSlab(qs.leaf_base);
  w->AlignedSlab(qs.leaf_value, kQsLeafGuard);
}

void EncodeFlatSet(const EstimatorSelector& selector, std::string* payload) {
  const FlatEnsembleSet& flat = selector.flat();
  AuxWriter w(payload);
  w.Pad8();
  w.U32(kFlatSectionMagic);
  w.U32(selector.uses_dynamic_features() ? 1 : 0);
  w.U64(flat.num_models());
  w.U64(selector.uses_dynamic_features()
            ? FeatureSchema::Get().num_features()
            : FeatureSchema::Get().num_static_features());
  {
    std::vector<uint64_t> pool(selector.pool().begin(),
                               selector.pool().end());
    w.AlignedSlab(Slab<uint64_t>(std::move(pool)));
  }
  w.AlignedSlab(flat.bias_slab());
  w.AlignedSlab(flat.tree_begin_slab());
  // Per-model training gains (small, copied at load) so FeatureImportance
  // survives the model-free rebuild: per-model lengths, then the
  // concatenation.
  {
    std::vector<uint64_t> lens;
    std::vector<double> concat;
    for (const MartModel& model : selector.models()) {
      lens.push_back(model.feature_gains().size());
      concat.insert(concat.end(), model.feature_gains().begin(),
                    model.feature_gains().end());
    }
    w.AlignedSlab(Slab<uint64_t>(std::move(lens)));
    w.AlignedSlab(Slab<double>(std::move(concat)));
  }
  const flat_internal::NodeStore& store = flat.store();
  w.AlignedSlab(store.roots);
  w.AlignedSlab(store.depth);
  w.AlignedSlab(store.sched);
  w.AlignedSlab(store.topo);
  w.AlignedSlab(store.split);
  w.AlignedSlab(store.leaf);
  for (const flat_internal::QuickScorerModel& qs : flat.quickscorers()) {
    w.U32(qs.usable ? 1 : 0);
    if (qs.usable) EncodeFlatQsTables(qs, &w);
  }
  const flat_internal::MergedQuickScorer& merged = flat.merged();
  w.U32(merged.usable ? 1 : 0);
  if (merged.usable) {
    w.I32(merged.num_features);
    w.AlignedSlab(merged.feat_begin);
    w.AlignedSlab(merged.threshold);
    w.AlignedSlab(merged.entry_tree);
    w.AlignedSlab(merged.entry_mask);
    w.AlignedSlab(merged.init_mask);
    w.AlignedSlab(merged.leaf_base);
    w.AlignedSlab(merged.leaf_value, kQsLeafGuard);
    w.AlignedSlab(merged.model_tree_begin);
    w.AlignedSlab(merged.bias);
  }
}

/// The model payload shared by the v1 and v2 writers: schema metadata,
/// then the static and dynamic selectors. One definition so the legacy
/// encoder can never drift from the current layout.
std::string EncodeStackModelPayload(const SelectorStack& stack) {
  RPE_CHECK(!stack.static_selector.uses_dynamic_features());
  RPE_CHECK(stack.dynamic_selector.uses_dynamic_features());
  // An arena-backed stack (EstimatorSelector::FromFlat) has no models to
  // persist; re-encoding it would silently write an empty model section.
  RPE_CHECK(stack.static_selector.has_models() &&
            stack.dynamic_selector.has_models())
      << "cannot encode a model-free (mmap-loaded) selector stack";
  std::string payload;
  Writer w(&payload);
  EncodeSchema(&w);
  EncodeSelector(stack.static_selector, &w);
  EncodeSelector(stack.dynamic_selector, &w);
  return payload;
}

Status WriteFile(const std::string& path, const std::string& bytes) {
  if (RPE_INJECT_FAULT("snapshot.write")) {
    return Status::IOError("injected failure: snapshot.write (" + path + ")");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<std::string> ReadFile(const std::string& path) {
  if (RPE_INJECT_FAULT("snapshot.read")) {
    return Status::IOError("injected failure: snapshot.read (" + path + ")");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = std::move(buf).str();
  // "snapshot.read.short": the tail of the file never arrives — the frame
  // checks downstream must reject the truncation, never decode part of it.
  if (RPE_INJECT_FAULT("snapshot.read.short")) bytes.resize(bytes.size() / 2);
  return bytes;
}

}  // namespace

Result<SnapshotFrame> UnframeSnapshot(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("snapshot shorter than its header");
  }
  Reader r(bytes.substr(0, kHeaderSize));
  uint32_t magic = 0, version = 0, kind = 0, reserved = 0, crc = 0;
  uint32_t aux_offset = 0;
  uint64_t payload_size = 0;
  RPE_RETURN_NOT_OK(r.U32(&magic));
  RPE_RETURN_NOT_OK(r.U32(&version));
  RPE_RETURN_NOT_OK(r.U32(&kind));
  RPE_RETURN_NOT_OK(r.U32(&reserved));
  RPE_RETURN_NOT_OK(r.U64(&payload_size));
  RPE_RETURN_NOT_OK(r.U32(&crc));
  RPE_RETURN_NOT_OK(r.U32(&aux_offset));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("bad snapshot magic");
  }
  if (version != kSnapshotVersion && version != kSnapshotVersionLegacy) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  if (payload_size != bytes.size() - kHeaderSize) {
    return Status::InvalidArgument(
        "snapshot payload size mismatch (truncated or padded file)");
  }
  const std::string_view payload = bytes.substr(kHeaderSize);
  // "snapshot.crc": the stored checksum reads back wrong — corruption on
  // the wire or at rest, detected exactly like a real bit flip.
  if (FrameCrc(version, aux_offset, payload) != crc ||
      RPE_INJECT_FAULT("snapshot.crc")) {
    return Status::InvalidArgument("snapshot payload CRC mismatch");
  }
  if (kind != static_cast<uint32_t>(SnapshotKind::kSelectorStack) &&
      kind != static_cast<uint32_t>(SnapshotKind::kRecordBatch)) {
    return Status::InvalidArgument("unknown snapshot kind " +
                                   std::to_string(kind));
  }
  // The CRC vouches for the aux offset (v2 folds it in); still bound it
  // so no reader chases a hand-crafted offset past the payload. Alignment
  // is the aux parser's concern (misalignment degrades to the copy path,
  // it is not corruption).
  if (version == kSnapshotVersionLegacy && aux_offset != 0) {
    return Status::InvalidArgument("v1 snapshot with an aux section");
  }
  if (aux_offset != 0 && aux_offset >= payload.size()) {
    return Status::InvalidArgument("snapshot aux offset past the payload");
  }
  SnapshotFrame frame;
  frame.kind = static_cast<SnapshotKind>(kind);
  frame.version = version;
  frame.aux_offset = aux_offset;
  frame.payload = payload;
  return frame;
}

namespace snapshot_internal {

Status CheckSchemaPrefix(std::string_view payload) {
  Reader r(payload);
  return DecodeAndCheckSchema(&r);
}

std::string EncodeSelectorStackLegacyV1(const SelectorStack& stack) {
  return Frame(SnapshotKind::kSelectorStack, EncodeStackModelPayload(stack),
               /*aux_offset=*/0, kSnapshotVersionLegacy);
}

}  // namespace snapshot_internal

SelectorStack SelectorStack::Train(const std::vector<PipelineRecord>& records,
                                   std::vector<size_t> pool,
                                   const MartParams& params) {
  SelectorStack stack;
  stack.static_selector = EstimatorSelector::Train(
      records, pool, /*use_dynamic_features=*/false, params);
  stack.dynamic_selector = EstimatorSelector::Train(
      records, std::move(pool), /*use_dynamic_features=*/true, params);
  return stack;
}

std::string EncodeSelectorStack(const SelectorStack& stack) {
  std::string payload = EncodeStackModelPayload(stack);
  // v2 aux section: the compiled scoring tables, 8-aligned, for the
  // zero-copy loader. The model payload above stays the source of truth
  // for the heap decoder.
  AuxWriter aux(&payload);
  aux.Pad8();
  const uint64_t aux_offset = payload.size();
  RPE_CHECK_LE(aux_offset, std::numeric_limits<uint32_t>::max());
  EncodeFlatSet(stack.static_selector, &payload);
  EncodeFlatSet(stack.dynamic_selector, &payload);
  return Frame(SnapshotKind::kSelectorStack, std::move(payload),
               static_cast<uint32_t>(aux_offset));
}

Result<SelectorStack> DecodeSelectorStack(std::string_view bytes) {
  RPE_ASSIGN_OR_RETURN(SnapshotFrame frame, UnframeSnapshot(bytes));
  if (frame.kind != SnapshotKind::kSelectorStack) {
    return Status::InvalidArgument("snapshot holds a different payload kind");
  }
  const std::string_view payload = frame.payload;
  Reader r(payload);
  RPE_RETURN_NOT_OK(DecodeAndCheckSchema(&r));
  SelectorStack stack;
  RPE_ASSIGN_OR_RETURN(stack.static_selector, DecodeSelector(&r));
  RPE_ASSIGN_OR_RETURN(stack.dynamic_selector, DecodeSelector(&r));
  if (stack.static_selector.uses_dynamic_features() ||
      !stack.dynamic_selector.uses_dynamic_features()) {
    return Status::InvalidArgument(
        "snapshot selector stack has wrong feature modes");
  }
  if (frame.aux_offset == 0) {
    if (r.Remaining() != 0) {
      return Status::InvalidArgument("snapshot has trailing payload bytes");
    }
  } else {
    // v2 keeps v1's exact-consumption discipline: the only bytes allowed
    // between the model payload and the aux section are a short run of
    // zero alignment padding (ours is < 8; tolerate foreign writers up to
    // a 64-byte unit). Anything else is smuggled or misframed data.
    const size_t consumed = payload.size() - r.Remaining();
    if (consumed > frame.aux_offset || frame.aux_offset - consumed >= 64) {
      return Status::InvalidArgument(
          "snapshot aux section does not abut the model payload");
    }
    for (size_t i = consumed; i < frame.aux_offset; ++i) {
      if (payload[i] != '\0') {
        return Status::InvalidArgument(
            "snapshot has non-padding bytes before the aux section");
      }
    }
  }
  return stack;
}

std::string EncodeRecordBatch(const std::vector<PipelineRecord>& records) {
  const FeatureSchema& schema = FeatureSchema::Get();
  const size_t arity =
      records.empty() ? static_cast<size_t>(kNumEstimatorKinds)
                      : records.front().l1.size();
  std::string payload;
  Writer w(&payload);
  w.U32(static_cast<uint32_t>(schema.num_features()));
  w.U32(static_cast<uint32_t>(arity));
  w.U64(records.size());
  for (const PipelineRecord& r : records) {
    RPE_CHECK_EQ(r.features.size(), schema.num_features());
    RPE_CHECK_EQ(r.l1.size(), arity);
    RPE_CHECK_EQ(r.l2.size(), arity);
    w.Str(r.workload);
    w.Str(r.query);
    w.I32(r.pipeline_id);
    w.Str(r.tag);
    w.F64(r.total_n);
    w.Slab(r.features);
    w.Slab(r.l1);
    w.Slab(r.l2);
  }
  return Frame(SnapshotKind::kRecordBatch, std::move(payload));
}

Result<std::vector<PipelineRecord>> DecodeRecordBatch(std::string_view bytes) {
  RPE_ASSIGN_OR_RETURN(std::string_view payload,
                       UnframeAs(SnapshotKind::kRecordBatch, bytes));
  Reader r(payload);
  const FeatureSchema& schema = FeatureSchema::Get();
  uint32_t num_features = 0, arity = 0;
  uint64_t num_records = 0;
  RPE_RETURN_NOT_OK(r.U32(&num_features));
  RPE_RETURN_NOT_OK(r.U32(&arity));
  RPE_RETURN_NOT_OK(r.U64(&num_records));
  if (num_features != schema.num_features()) {
    return Status::InvalidArgument(
        "record snapshot feature count disagrees with this binary");
  }
  if (arity != static_cast<size_t>(kNumEstimatorKinds)) {
    return Status::InvalidArgument(
        "record snapshot estimator arity " + std::to_string(arity) +
        " disagrees with this binary's estimator table (" +
        std::to_string(kNumEstimatorKinds) + ")");
  }
  std::vector<PipelineRecord> records;
  records.reserve(static_cast<size_t>(std::min<uint64_t>(num_records, 65536)));
  for (uint64_t i = 0; i < num_records; ++i) {
    PipelineRecord rec;
    RPE_RETURN_NOT_OK(r.Str(&rec.workload));
    RPE_RETURN_NOT_OK(r.Str(&rec.query));
    RPE_RETURN_NOT_OK(r.I32(&rec.pipeline_id));
    RPE_RETURN_NOT_OK(r.Str(&rec.tag));
    RPE_RETURN_NOT_OK(r.F64(&rec.total_n));
    RPE_RETURN_NOT_OK(r.Slab(&rec.features));
    RPE_RETURN_NOT_OK(r.Slab(&rec.l1));
    RPE_RETURN_NOT_OK(r.Slab(&rec.l2));
    if (rec.features.size() != num_features || rec.l1.size() != arity ||
        rec.l2.size() != arity) {
      return Status::InvalidArgument("record snapshot row " +
                                     std::to_string(i) +
                                     " has mismatched arity");
    }
    records.push_back(std::move(rec));
  }
  if (r.Remaining() != 0) {
    return Status::InvalidArgument("snapshot has trailing payload bytes");
  }
  return records;
}

Result<SnapshotKind> PeekSnapshotKind(std::string_view bytes) {
  RPE_ASSIGN_OR_RETURN(SnapshotFrame frame, UnframeSnapshot(bytes));
  return frame.kind;
}

Result<SnapshotKind> PeekSnapshotFileKind(const std::string& path) {
  RPE_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  return PeekSnapshotKind(bytes);
}

Result<std::string> ReadSnapshotFile(const std::string& path) {
  return ReadFile(path);
}

Status SaveSelectorStack(const SelectorStack& stack, const std::string& path) {
  return WriteFile(path, EncodeSelectorStack(stack));
}

Result<SelectorStack> LoadSelectorStack(const std::string& path) {
  RPE_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  return DecodeSelectorStack(bytes);
}

Status SaveRecordBatch(const std::vector<PipelineRecord>& records,
                       const std::string& path) {
  return WriteFile(path, EncodeRecordBatch(records));
}

Result<std::vector<PipelineRecord>> LoadRecordBatch(const std::string& path) {
  RPE_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  return DecodeRecordBatch(bytes);
}

}  // namespace rpe
