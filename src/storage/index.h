// Secondary sorted index over one table column, supporting equality seeks
// and range scans. Presence/absence of these indexes is what distinguishes
// the paper's "untuned" / "partially tuned" / "fully tuned" physical designs
// (Table 1): the planner only emits IndexSeek / index-nested-loop plans when
// a matching index exists.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/table.h"

namespace rpe {

/// \brief Sorted (key, rowid) pairs over `table.column(col)`.
class SortedIndex {
 public:
  SortedIndex(const Table* table, size_t column);

  const Table* table() const { return table_; }
  size_t column() const { return column_; }
  uint64_t num_entries() const { return entries_.size(); }

  /// Row ids whose key equals `key` (seek). O(log n + matches).
  std::vector<RowId> SeekEqual(int64_t key) const;

  /// Row ids with key in [lo, hi], in key order.
  std::vector<RowId> SeekRange(int64_t lo, int64_t hi) const;

  /// Number of matching entries without materializing them.
  uint64_t CountEqual(int64_t key) const;
  uint64_t CountRange(int64_t lo, int64_t hi) const;

  /// All row ids in key order (ordered index scan).
  const std::vector<std::pair<int64_t, RowId>>& entries() const {
    return entries_;
  }

 private:
  const Table* table_;
  size_t column_;
  std::vector<std::pair<int64_t, RowId>> entries_;
};

}  // namespace rpe
