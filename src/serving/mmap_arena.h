// Zero-copy snapshot loading: MmapArena maps an .rpsn selector-stack file
// read-only and LoadSelectorStackMmap rebuilds the SelectorStack with the
// compiled scoring tables (FlatEnsembleSet) pointing straight into the
// mapping — no tree decode, no slab memcpy, no recompilation. This is the
// warm-restart / hot-publish path the serving tier uses when model slabs
// are large enough that copying them through the heap dominates load time.
//
// How it works: a v2 snapshot carries an aux section with every compiled
// slab 8-aligned (see serving/snapshot.h for the layout). The loader CRC-
// validates the container, checks the feature schema, then constructs
// Slab<T>::Borrow views over the mapped bytes and passes them through the
// untrusted-input gates (FlatEnsembleSet::FromParts,
// EstimatorSelector::FromFlat) — a truncated, corrupt, or hostile file
// yields a Status, never UB.
//
// Ownership and lifetime: the returned shared_ptr<const SelectorStack>
// aliases a holder that co-owns the MmapArena, so the mapping lives
// exactly as long as any reference to the stack — sessions that pin the
// stack (MonitorService) transitively pin the mapping, and the file is
// unmapped when the last session lets go. The mapping is private and
// read-only; mutating the file on disk while mapped is the caller's
// responsibility to avoid (publish by writing a new file + atomic rename,
// never by rewriting in place).
//
// Fallbacks: legacy v1 files (no aux section) and files whose aux
// section sits at an unaligned offset degrade gracefully to the ordinary
// copy decoder (DecodeSelectorStack) over the mapped bytes — same
// scores, heap-owned buffers, mapping released after load. Structural
// damage (bad magic, CRC mismatch, truncation, out-of-range tables) is
// an error, not a fallback.
//
// Model-free stacks: an mmap-loaded selector has no MartModels
// (EstimatorSelector::has_models() == false). It scores bit-identically
// to the heap-loaded stack, but it cannot be re-encoded or re-trained
// from; treat it as a scoring artifact.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "serving/snapshot.h"

namespace rpe {

/// \brief A read-only private memory mapping of a whole file. Thread-safe
/// after construction (the mapping is immutable).
class MmapArena {
 public:
  /// Map `path` read-only. IOError when the file cannot be opened or
  /// mapped; InvalidArgument for an empty file (shorter than any header).
  /// A successful mapping is advised with madvise(MADV_WILLNEED) so the
  /// kernel prefaults the snapshot ahead of the CRC sweep instead of one
  /// 4 KiB page per fault; madvise is advisory, so a failure (failpoint
  /// `arena.madvise`) degrades to a warning and `prefaulted() == false`,
  /// never an error.
  static Result<std::shared_ptr<MmapArena>> Map(const std::string& path);

  ~MmapArena();
  MmapArena(const MmapArena&) = delete;
  MmapArena& operator=(const MmapArena&) = delete;

  std::string_view bytes() const {
    return {static_cast<const char*>(addr_), size_};
  }
  size_t size() const { return size_; }
  /// True when the MADV_WILLNEED advice was accepted at Map time.
  bool prefaulted() const { return prefaulted_; }

 private:
  MmapArena(void* addr, size_t size, bool prefaulted)
      : addr_(addr), size_(size), prefaulted_(prefaulted) {}

  void* addr_;
  size_t size_;
  bool prefaulted_;
};

/// \brief Result of LoadSelectorStackMmap.
struct ArenaStackLoad {
  /// The loaded stack; when zero_copy, it transitively owns the mapping.
  std::shared_ptr<const SelectorStack> stack;
  /// True when scoring tables alias the mapping; false when the load fell
  /// back to the copy decoder (legacy v1 file, missing aux section, or
  /// misaligned slabs).
  bool zero_copy = false;
  size_t mapped_bytes = 0;
};

/// Map an .rpsn selector-stack snapshot and rebuild it zero-copy (with
/// the copy fallback described above). All validation is performed before
/// the stack is returned; the result scores bit-identically to
/// LoadSelectorStack on the same file.
Result<ArenaStackLoad> LoadSelectorStackMmap(const std::string& path);

}  // namespace rpe
