#include "storage/catalog.h"

namespace rpe {

namespace {
std::string IndexKey(const std::string& table, const std::string& column) {
  return table + "." + column;
}
}  // namespace

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  const std::string name = table->name();
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return static_cast<const Table*>(it->second.get());
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Status Catalog::CreateIndex(const std::string& table,
                            const std::string& column) {
  const std::string key = IndexKey(table, column);
  if (indexes_.count(key) > 0) return Status::OK();
  auto t = GetTable(table);
  RPE_RETURN_NOT_OK(t.status());
  auto col = (*t)->schema().ColumnIndex(column);
  RPE_RETURN_NOT_OK(col.status());
  indexes_[key] = std::make_unique<SortedIndex>(*t, *col);
  return Status::OK();
}

void Catalog::DropAllIndexes() { indexes_.clear(); }

const SortedIndex* Catalog::GetIndex(const std::string& table,
                                     const std::string& column) const {
  auto it = indexes_.find(IndexKey(table, column));
  return it == indexes_.end() ? nullptr : it->second.get();
}

bool Catalog::HasIndex(const std::string& table,
                       const std::string& column) const {
  return GetIndex(table, column) != nullptr;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace rpe
