// ThreadPool tests: deterministic per-index results, exception
// propagation, pool reuse across many ParallelFor rounds, nested calls
// (the selector-over-model-over-feature shape), and Submit futures.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace rpe {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ResultsLandInIndexOrder) {
  ThreadPool pool(4);
  std::vector<size_t> out(5000, 0);
  pool.ParallelFor(out.size(), [&](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, ZeroAndOneIndexRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(10, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a throwing round and keeps working.
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> out(64, -1);
    pool.ParallelFor(out.size(),
                     [&](size_t i) { out[i] = round + static_cast<int>(i); });
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], round + static_cast<int>(i));
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::vector<std::vector<int>> out(8, std::vector<int>(32, 0));
  pool.ParallelFor(out.size(), [&](size_t i) {
    pool.ParallelFor(out[i].size(),
                     [&, i](size_t j) { out[i][j] = static_cast<int>(i * j); });
  });
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t j = 0; j < out[i].size(); ++j) {
      EXPECT_EQ(out[i][j], static_cast<int>(i * j));
    }
  }
}

TEST(ThreadPoolTest, SubmitReturnsFutureResult) {
  ThreadPool pool(2);
  auto a = pool.Submit([] { return 21 * 2; });
  auto b = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> sum{0};
  ThreadPool::Global().ParallelFor(16,
                                   [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 120);
}

}  // namespace
}  // namespace rpe
