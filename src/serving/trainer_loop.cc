#include "serving/trainer_loop.h"

#include <iostream>
#include <utility>

#include "common/logging.h"

namespace rpe {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

TrainerLoop::TrainerLoop(RecordIngestQueue* queue, ModelPublisher* service,
                         Options options)
    : queue_(queue), service_(service), options_(std::move(options)) {
  RPE_CHECK(queue_ != nullptr);
  RPE_CHECK(service_ != nullptr);
  RPE_CHECK(!options_.pool.empty());
  RPE_CHECK(options_.min_corpus > 0);
  RPE_CHECK(options_.max_corpus >= options_.min_corpus);
  last_retrain_time_ = Clock::now();
}

TrainerLoop::~TrainerLoop() { Stop(); }

void TrainerLoop::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return;
  started_ = true;
  stop_.store(false);
  thread_ = std::thread([this] { ThreadMain(); });
}

void TrainerLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    stop_.store(true);
    // Close before joining: it both shuts the intake (so live producers
    // cannot refill the queue and stall the final drain below) and wakes
    // a consumer thread sleeping in WaitAndDrain immediately instead of
    // after a full poll_interval.
    queue_->Close();
    if (thread_.joinable()) thread_.join();
    started_ = false;
  }
  // Drain what was accepted so pushed == drained and a pending threshold
  // can still fire.
  size_t drained;
  do {
    drained = RunOnce();
  } while (drained > 0);
}

void TrainerLoop::SeedCorpus(std::vector<PipelineRecord> records) {
  std::lock_guard<std::mutex> lock(run_mu_);
  for (auto& r : records) corpus_.push_back(std::move(r));
  while (corpus_.size() > options_.max_corpus) corpus_.pop_front();
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  corpus_size_ = corpus_.size();
}

void TrainerLoop::ThreadMain() {
  while (!stop_.load()) {
    std::vector<PipelineRecord> batch;
    // Block on the queue outside run_mu_ so RunOnce callers never wait on
    // the poll interval.
    queue_->WaitAndDrain(&batch, options_.drain_batch,
                         options_.poll_interval);
    std::lock_guard<std::mutex> lock(run_mu_);
    MergeBatchLocked(&batch);
    MaybeRetrainLocked();
  }
}

size_t TrainerLoop::RunOnce() {
  std::vector<PipelineRecord> batch;
  const size_t n = queue_->DrainBatch(&batch, options_.drain_batch);
  std::lock_guard<std::mutex> lock(run_mu_);
  MergeBatchLocked(&batch);
  MaybeRetrainLocked();
  return n;
}

void TrainerLoop::MergeBatchLocked(std::vector<PipelineRecord>* batch) {
  if (batch->empty()) return;
  new_since_retrain_ += batch->size();
  has_pending_since_ = true;
  for (auto& r : *batch) corpus_.push_back(std::move(r));
  while (corpus_.size() > options_.max_corpus) corpus_.pop_front();
  std::lock_guard<std::mutex> lock(stats_mu_);
  corpus_size_ = corpus_.size();
}

void TrainerLoop::MaybeRetrainLocked() {
  // Both triggers require at least one new record, so a zero threshold
  // means "retrain on any new record", never an idle retrain storm.
  const bool rows_trip = new_since_retrain_ > 0 &&
                         new_since_retrain_ >= options_.retrain_min_records;
  const bool staleness_trip =
      options_.max_staleness.count() > 0 && has_pending_since_ &&
      Clock::now() - last_retrain_time_ >= options_.max_staleness;
  if (!(rows_trip || staleness_trip)) return;
  if (corpus_.size() < options_.min_corpus) return;

  const auto start = Clock::now();
  const std::vector<PipelineRecord> snapshot(corpus_.begin(), corpus_.end());
  auto stack = std::make_shared<const SelectorStack>(
      SelectorStack::Train(snapshot, options_.pool, options_.params));

  uint64_t snapshot_failures = 0;
  if (!options_.snapshot_path.empty()) {
    const Status saved = SaveSelectorStack(*stack, options_.snapshot_path);
    if (!saved.ok()) {
      std::cerr << "trainer_loop: snapshot write failed: " << saved.ToString()
                << "\n";
      snapshot_failures = 1;
    }
  }

  const uint64_t generation = service_->SwapModels(std::move(stack));
  new_since_retrain_ = 0;
  has_pending_since_ = false;
  last_retrain_time_ = Clock::now();
  const double retrain_ms =
      std::chrono::duration<double, std::milli>(last_retrain_time_ - start)
          .count();

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++retrains_;
  last_swap_generation_ = generation;
  snapshot_write_failures_ += snapshot_failures;
  corpus_size_ = corpus_.size();
  last_retrain_ms_ = retrain_ms;
}

uint64_t TrainerLoop::retrains() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return retrains_;
}

uint64_t TrainerLoop::last_swap_generation() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return last_swap_generation_;
}

IngestStats TrainerLoop::GetStats() const {
  IngestStats stats = queue_->GetStats();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats.retrains = retrains_;
  stats.last_swap_generation = last_swap_generation_;
  stats.snapshot_write_failures = snapshot_write_failures_;
  stats.last_retrain_ms = last_retrain_ms_;
  // Live corpus size when the loop is idle; the post-retrain size while a
  // retrain is in flight (run_mu_ is not taken here so stats never stall
  // behind training).
  stats.corpus_size = corpus_size_;
  return stats;
}

}  // namespace rpe
