// Low-overhead metrics registry for the serving tier: named counters,
// gauges, and log-bucketed latency histograms, exposed as Prometheus
// text (docs/OBSERVABILITY.md is the metric catalog).
//
// Hot-path contract: an increment is ONE relaxed fetch_add on a
// cache-line-padded, per-thread-sharded atomic cell — no lock, no
// branch on registry state, no allocation. Aggregation (summing the
// shards) happens only on scrape, so instrumenting the scoring and
// training paths cannot perturb their determinism or their timing in
// any way that matters: the instruction stream is identical for every
// thread count.
//
// Ownership: a MetricsRegistry owns its metrics for its lifetime;
// GetCounter/GetGauge/GetHistogram register on first use and return
// stable pointers that callers may cache and hit lock-free forever
// after. Metrics that live outside the registry (per-shard service
// stats, failpoint counters, SIMD tier) are exported through scrape-time
// collectors (AddCollector): a collector appends Samples when — and only
// when — someone scrapes, so exporting a subsystem costs it nothing
// between scrapes. Samples carry an optional table label, which is what
// the registry-driven CLI stats table (table_printer.h: MetricsTable)
// renders; the same Collect() feeds the /metrics endpoint, the
// kMetricsDump wire frame, and the exit-time tables — one source of
// truth.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rpe {
namespace obs {

/// Per-thread shard count of every sharded metric (power of two). 16
/// cells × 64 B keeps a counter at one cache line per concurrent writer
/// for any realistic IO-thread count while bounding scrape work.
inline constexpr uint32_t kMetricShards = 16;

namespace internal {
/// Stable per-thread shard index: threads take increasing ids from a
/// process-global counter, folded into the shard range. Two threads can
/// alias the same cell after kMetricShards spawns — correctness is
/// unaffected (the cell is atomic), only write locality degrades.
uint32_t ThreadShard();
}  // namespace internal

/// \brief Monotonic counter. Inc is one relaxed fetch_add; Value sums
/// the shards (scrape-time only).
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    cells_[internal::ThreadShard()].v.fetch_add(n,
                                                std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kMetricShards];
};

/// \brief Last-write-wins signed gauge (queue depths, generations).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Log-bucketed histogram of nonnegative integer values
/// (latencies in nanoseconds, sizes in bytes). Buckets are base-2 with
/// kHistSubBuckets linear sub-buckets per octave, so any recorded value
/// lands in a bucket whose width is at most 1/kHistSubBuckets of its
/// lower bound — quantile estimates carry a bounded ~12.5% relative
/// error. Record is two relaxed fetch_adds on the caller's shard.
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 3;
  static constexpr uint32_t kSub = 1u << kSubBits;  ///< sub-buckets/octave
  /// Bucket count: kSub exact buckets for values < kSub, then kSub per
  /// octave up to 2^64.
  static constexpr uint32_t kBuckets = (64 - kSubBits + 1) * kSub;

  /// Index of the bucket holding `v`. Values < kSub get exact buckets.
  static uint32_t BucketIndex(uint64_t v);
  /// Inclusive lower bound of bucket `i`.
  static uint64_t BucketLower(uint32_t i);
  /// Exclusive upper bound of bucket `i` (0 means 2^64, the top).
  static uint64_t BucketUpper(uint32_t i);

  void Record(uint64_t v) {
    // ThreadShard() ranges over kMetricShards; fold it into the smaller
    // histogram shard count (both powers of two).
    Shard& s = shards_[internal::ThreadShard() & (kHistShards - 1)];
    s.counts[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// \brief Scrape-time aggregate of one histogram.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<uint64_t> counts;  ///< kBuckets entries

    /// Quantile estimate (q in [0,1]) by linear interpolation inside the
    /// bucket holding the rank — exact for values < kSub, within the
    /// bucket's ~12.5% width above. 0 when empty.
    double Quantile(double q) const;
  };
  Snapshot Snap() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> counts[kBuckets];
    std::atomic<uint64_t> sum{0};
  };
  // Histograms are an order of magnitude bigger than counters; shard
  // them less aggressively (4 × ~4 KiB) — Record is still contention-free
  // for up to 4 concurrent writers per histogram.
  static constexpr uint32_t kHistShards = 4;
  Shard shards_[kHistShards] = {};

  friend class MetricsRegistry;
};

/// \brief One scrape-time scalar sample. Histograms do not flow through
/// Sample — the registry renders them natively — but a collector may
/// derive gauges (p50/p95) from one.
struct Sample {
  std::string name;         ///< Prometheus metric name (no braces)
  std::string labels;       ///< rendered inside {...}; may be empty
  std::string table_label;  ///< CLI stats-table row; empty = not a row
  double value = 0.0;
  enum class Kind { kCounter, kGauge } kind = Kind::kCounter;

  static Sample CounterSample(std::string name, double value,
                              std::string table_label = "",
                              std::string labels = "");
  static Sample GaugeSample(std::string name, double value,
                            std::string table_label = "",
                            std::string labels = "");
};

/// \brief Registry of owned metrics plus scrape-time collectors. Metric
/// lookup/registration and scraping serialize on one mutex; the returned
/// metric objects are lock-free and stay valid until the registry dies.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. A non-empty table_label makes the metric a row of
  /// the CLI stats table; the first registration's label wins.
  Counter* GetCounter(std::string_view name,
                      std::string_view table_label = "");
  Gauge* GetGauge(std::string_view name, std::string_view table_label = "");
  Histogram* GetHistogram(std::string_view name);

  /// Scrape-time exporter for state owned elsewhere; returns an id for
  /// RemoveCollector. Collectors run under the registry mutex in
  /// registration order — keep them allocation-light and lock-shallow
  /// (they may take subsystem locks, e.g. a service stats mutex).
  using Collector = std::function<void(std::vector<Sample>*)>;
  int AddCollector(Collector fn);
  void RemoveCollector(int id);

  /// Owned scalars (registration order) followed by collector output.
  std::vector<Sample> Collect() const;

  /// Prometheus text exposition (version 0.0.4): Collect() plus owned
  /// histograms (seconds-unit `le` bounds from the nanosecond buckets).
  std::string RenderPrometheus() const;

  /// Process-global default registry (used when a subsystem is not handed
  /// an explicit one). Tests that need isolation construct their own.
  static MetricsRegistry& Global();

 private:
  struct Family {
    std::string table_label;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
  std::vector<std::string> order_;  ///< registration order of families_
  std::vector<std::pair<int, Collector>> collectors_;
  int next_collector_id_ = 1;
};

}  // namespace obs
}  // namespace rpe
