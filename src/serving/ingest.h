// RecordIngestQueue: the observe→record tap of the online-learning loop
// (paper §6.4, "training data can be captured at low overhead in a running
// system"). Producers are running executors / workload drivers that push
// each completed, featurized PipelineRecord; the single consumer is the
// background TrainerLoop, which drains records in batches and folds them
// into the sliding training corpus.
//
// Shape: bounded multi-producer/single-consumer queue, mutex + condvar
// with batched drain. Push never blocks — when the queue is full the
// record is dropped and counted, so ingest can never apply backpressure
// to query execution (losing a training example is cheap; stalling a
// query is not). The drop counter is exact: every record offered is
// accounted as either pushed or dropped, and pushed == drained once the
// consumer has caught up.
//
// Threading contract: all methods are thread-safe. Push may be called
// from any number of threads; DrainBatch/WaitAndDrain are intended for a
// single consumer (multiple consumers are safe but split the stream).
// Close() wakes blocked consumers; records offered after Close are
// counted as dropped.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "selection/record.h"

namespace rpe {

/// \brief Counters describing the online-learning loop, exported through
/// MonitorService::Stats. The queue fills the queue-side fields; the
/// TrainerLoop overlays the retraining fields.
struct IngestStats {
  uint64_t pushed = 0;   ///< records accepted into the queue
  uint64_t dropped = 0;  ///< records rejected (queue full or closed)
  uint64_t drained = 0;  ///< records handed to the consumer
  uint64_t batches = 0;  ///< drain calls that returned at least one record
  uint64_t retrains = 0;  ///< completed retrain + publish cycles
  /// MonitorService model generation of the most recent publish (0 =
  /// nothing published yet).
  uint64_t last_swap_generation = 0;
  /// Retrain cycles that failed before anything was published; the loop
  /// quarantines (exponential backoff) and keeps serving the previous
  /// generation.
  uint64_t retrain_failures = 0;
  /// Successful retrain + publish cycles that ended a failure streak —
  /// the loop healed without intervention.
  uint64_t retrain_recoveries = 0;
  /// Failed .rpsn writes of retrained stacks after every retry was
  /// exhausted (publish still proceeded — a lost snapshot file never
  /// blocks serving fresh models).
  uint64_t snapshot_write_failures = 0;
  /// Snapshot-write retry attempts (beyond each first try) that the
  /// bounded exponential backoff consumed.
  uint64_t snapshot_write_retries = 0;
  /// Publishes abandoned after every retry was exhausted: the retrained
  /// stack is dropped, the previous generation keeps serving, and the
  /// pending-record counters stay set so a later cycle retries.
  uint64_t publish_failures = 0;
  /// Publish retry attempts (beyond each first try).
  uint64_t publish_retries = 0;
  size_t queue_size = 0;   ///< records currently queued
  size_t corpus_size = 0;  ///< records in the sliding training corpus
  double last_retrain_ms = 0.0;  ///< wall time of the most recent retrain
};

/// \brief Bounded MPSC queue of completed pipeline records. See the file
/// comment for the threading contract.
class RecordIngestQueue {
 public:
  explicit RecordIngestQueue(size_t capacity);

  /// Offer one record. Returns true if accepted; false (and counts the
  /// record as dropped) when the queue is full or closed. Never blocks.
  bool Push(PipelineRecord record);

  /// Pop up to `max_records` records (FIFO) into `*out` (appended).
  /// Returns the number drained; never blocks.
  size_t DrainBatch(std::vector<PipelineRecord>* out, size_t max_records);

  /// Like DrainBatch, but blocks until at least one record is available,
  /// the queue is closed, or `timeout` elapses.
  size_t WaitAndDrain(std::vector<PipelineRecord>* out, size_t max_records,
                      std::chrono::milliseconds timeout);

  /// Reject future pushes and wake blocked consumers. Records already
  /// queued remain drainable.
  void Close();
  bool closed() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t pushed() const;
  uint64_t dropped() const;

  /// Queue-side counters (retraining fields are zero; the TrainerLoop
  /// merges its own on top).
  IngestStats GetStats() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PipelineRecord> queue_;
  bool closed_ = false;
  uint64_t pushed_ = 0;
  uint64_t dropped_ = 0;
  uint64_t drained_ = 0;
  uint64_t batches_ = 0;
};

}  // namespace rpe
