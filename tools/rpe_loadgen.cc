// rpe_loadgen: load generator for the TCP serving front-end
// (`rpe_cli serve-tcp`). Speaks the length-prefixed wire protocol
// (src/serving/wire.h) over blocking loopback sockets, one thread per
// connection, and reports a latency histogram plus throughput as JSON.
//
// Two driving modes:
//
//   closed loop (default)    every connection runs sessions back to back
//                            until the shared --sessions budget is spent;
//                            concurrency is fixed (= --connections), the
//                            arrival rate is whatever the server sustains.
//
//   open loop (--rate R)     session arrivals follow a fixed schedule of
//                            R per second, spread round-robin across the
//                            connections; a slow server makes arrivals
//                            queue behind their connection (latency grows,
//                            the schedule does not bend). Stops after
//                            --sessions arrivals.
//
// One session = Open -> Advance(--steps) until done -> Close. Latency is
// sampled per request (RTT of each frame exchange) and per session
// (open-to-close). Percentiles are exact: every sample is kept and
// sorted, no binning.
//
// The final line on stdout is one JSON object (everything else goes to
// stderr) so scripts can `tail -n 1 | python3 -m json.tool`. With
// --check, the client's own counters are reconciled against the server's
// StatsResponse — opens, completions, and advance steps must match
// exactly when this loadgen is the server's only client — and any
// mismatch exits 1.
//
// Example:
//   rpe_loadgen --port 41001 --connections 8 --sessions 256 --steps 64
//   rpe_loadgen --port 41001 --rate 500 --sessions 1000 --check
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serving/wire.h"

namespace rpe {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// \brief One blocking connection to the server: framed request/response
/// with incremental reassembly (responses can arrive in any chunking).
class WireClient {
 public:
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Connect(const std::string& host, uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return Status::IOError("socket: " + std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad --host address: " + host);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      return Status::IOError("connect 127.0.0.1:" + std::to_string(port) +
                             ": " + std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return Status::OK();
  }

  /// Send one encoded frame, block until the matching response frame.
  Result<WireFrame> Call(const std::string& request) {
    size_t off = 0;
    while (off < request.size()) {
      const ssize_t n =
          ::send(fd_, request.data() + off, request.size() - off, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("send: " + std::string(std::strerror(errno)));
      }
      off += static_cast<size_t>(n);
    }
    while (true) {
      WireFrame frame;
      RPE_ASSIGN_OR_RETURN(bool complete, decoder_.Next(&frame));
      if (complete) return frame;
      char chunk[16 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("recv: " + std::string(std::strerror(errno)));
      }
      if (n == 0) {
        return Status::IOError("server closed the connection mid-response");
      }
      decoder_.Feed(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

struct Config {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t connections = 4;
  size_t sessions = 64;    ///< total session budget (both modes)
  uint32_t steps = 64;     ///< max_steps per AdvanceRequest
  double rate = 0.0;       ///< arrivals/sec; 0 = closed loop
  size_t runs = 0;         ///< distinct run_index values to cycle (0 = any)
  bool check = false;      ///< reconcile against server stats, exit 1 off
};

/// \brief Per-worker tallies and latency samples, merged after the join.
struct WorkerResult {
  uint64_t opens = 0;
  uint64_t completed = 0;
  uint64_t advance_requests = 0;
  uint64_t advance_steps = 0;
  uint64_t errors = 0;
  std::vector<double> request_ms;  ///< RTT of every frame exchange
  std::vector<double> session_ms;  ///< open-to-close per session
  Status fatal;  ///< first connection-fatal error, ends the worker
};

/// Run one full session on `client`; samples RTTs into `out`.
Status RunSession(WireClient* client, const Config& config,
                  uint32_t run_index, WorkerResult* out) {
  const auto session_start = Clock::now();

  auto timed = [&](const std::string& request) -> Result<WireFrame> {
    const auto t0 = Clock::now();
    RPE_ASSIGN_OR_RETURN(WireFrame frame, client->Call(request));
    out->request_ms.push_back(SecondsSince(t0) * 1e3);
    return frame;
  };

  OpenRequest open;
  open.run_index = run_index;
  RPE_ASSIGN_OR_RETURN(WireFrame frame, timed(EncodeOpenRequest(open)));
  if (!frame.ok()) return frame.ToStatus();
  RPE_ASSIGN_OR_RETURN(OpenResponse opened,
                       DecodeOpenResponse(frame.payload));
  ++out->opens;

  AdvanceRequest advance;
  advance.session_id = opened.session_id;
  advance.max_steps = config.steps;
  while (true) {
    RPE_ASSIGN_OR_RETURN(frame, timed(EncodeAdvanceRequest(advance)));
    if (!frame.ok()) return frame.ToStatus();
    RPE_ASSIGN_OR_RETURN(AdvanceResponse stepped,
                         DecodeAdvanceResponse(frame.payload));
    ++out->advance_requests;
    out->advance_steps += stepped.steps;
    if (stepped.done != 0) break;
  }

  CloseRequest close;
  close.session_id = opened.session_id;
  RPE_ASSIGN_OR_RETURN(frame, timed(EncodeCloseRequest(close)));
  if (!frame.ok()) return frame.ToStatus();
  ++out->completed;
  out->session_ms.push_back(SecondsSince(session_start) * 1e3);
  return Status::OK();
}

/// Closed loop: claim session slots from the shared budget until spent.
void ClosedLoopWorker(const Config& config, std::atomic<uint64_t>* next,
                      WorkerResult* out) {
  WireClient client;
  out->fatal = client.Connect(config.host, config.port);
  if (!out->fatal.ok()) return;
  while (true) {
    const uint64_t slot = next->fetch_add(1);
    if (slot >= config.sessions) break;
    const uint32_t run_index = static_cast<uint32_t>(
        config.runs > 0 ? slot % config.runs : slot);
    const Status st = RunSession(&client, config, run_index, out);
    if (!st.ok()) {
      ++out->errors;
      out->fatal = st;  // blocking protocol: desync is not recoverable
      return;
    }
  }
}

/// Open loop: arrivals k = id, id + connections, ... fire at k / rate
/// seconds after the shared start; a late worker runs its backlog without
/// bending the schedule.
void OpenLoopWorker(const Config& config, size_t id,
                    Clock::time_point start, WorkerResult* out) {
  WireClient client;
  out->fatal = client.Connect(config.host, config.port);
  if (!out->fatal.ok()) return;
  for (uint64_t k = id; k < config.sessions; k += config.connections) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(k) / config.rate));
    std::this_thread::sleep_until(due);
    const uint32_t run_index =
        static_cast<uint32_t>(config.runs > 0 ? k % config.runs : k);
    const Status st = RunSession(&client, config, run_index, out);
    if (!st.ok()) {
      ++out->errors;
      out->fatal = st;
      return;
    }
  }
}

/// Exact percentile over sorted samples (nearest-rank interpolation, the
/// same convention as common/stats.h on the server side).
double PercentileSorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << v;
  return out.str();
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "true";
    }
  }
  return flags;
}

void PrintUsage(std::ostream& out) {
  out << "usage: rpe_loadgen --port P [--host 127.0.0.1]\n"
         "  [--connections 4] [--sessions 64] [--steps 64]\n"
         "  [--rate R]   open loop: R session arrivals/sec (0 = closed)\n"
         "  [--runs N]   cycle run_index over [0, N) (0 = one per session)\n"
         "  [--check]    reconcile client counters against server Stats;\n"
         "               any mismatch exits 1\n"
         "Drives `rpe_cli serve-tcp` (see docs/NETWORK.md); emits one\n"
         "JSON result object as the last stdout line.\n";
}

int Main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);
  if (flags.count("help") > 0 || flags.count("port") == 0) {
    PrintUsage(flags.count("help") > 0 ? std::cout : std::cerr);
    return flags.count("help") > 0 ? 0 : 2;
  }
  Config config;
  try {
    config.host = flags.count("host") ? flags.at("host") : config.host;
    config.port = static_cast<uint16_t>(std::stoul(flags.at("port")));
    if (flags.count("connections"))
      config.connections = std::stoul(flags.at("connections"));
    if (flags.count("sessions"))
      config.sessions = std::stoul(flags.at("sessions"));
    if (flags.count("steps"))
      config.steps = static_cast<uint32_t>(std::stoul(flags.at("steps")));
    if (flags.count("rate")) config.rate = std::stod(flags.at("rate"));
    if (flags.count("runs")) config.runs = std::stoul(flags.at("runs"));
    config.check = flags.count("check") > 0;
  } catch (const std::exception& e) {
    std::cerr << "bad flag value: " << e.what() << "\n";
    return 2;
  }
  if (config.connections == 0 || config.sessions == 0 || config.steps == 0 ||
      config.steps > kMaxAdvanceSteps || config.rate < 0.0) {
    std::cerr << "invalid configuration: connections/sessions/steps must be "
                 "positive, steps <= "
              << kMaxAdvanceSteps << ", rate >= 0\n";
    return 2;
  }

  std::cerr << (config.rate > 0.0 ? "open" : "closed") << "-loop run: "
            << config.sessions << " sessions over " << config.connections
            << " connections to " << config.host << ":" << config.port
            << "\n";

  std::vector<WorkerResult> results(config.connections);
  std::vector<std::thread> workers;
  std::atomic<uint64_t> next{0};
  const auto start = Clock::now();
  for (size_t c = 0; c < config.connections; ++c) {
    if (config.rate > 0.0) {
      workers.emplace_back(OpenLoopWorker, config, c, start, &results[c]);
    } else {
      workers.emplace_back(ClosedLoopWorker, config, &next, &results[c]);
    }
  }
  for (auto& w : workers) w.join();
  const double elapsed = SecondsSince(start);

  WorkerResult total;
  for (const WorkerResult& r : results) {
    total.opens += r.opens;
    total.completed += r.completed;
    total.advance_requests += r.advance_requests;
    total.advance_steps += r.advance_steps;
    total.errors += r.errors;
    total.request_ms.insert(total.request_ms.end(), r.request_ms.begin(),
                            r.request_ms.end());
    total.session_ms.insert(total.session_ms.end(), r.session_ms.begin(),
                            r.session_ms.end());
    if (total.fatal.ok() && !r.fatal.ok()) total.fatal = r.fatal;
  }
  if (!total.fatal.ok()) {
    std::cerr << "worker failed: " << total.fatal.ToString() << "\n";
  }
  std::sort(total.request_ms.begin(), total.request_ms.end());
  std::sort(total.session_ms.begin(), total.session_ms.end());

  // Server-side view, over a fresh connection after the workers joined so
  // the counters are quiescent.
  WireStats server{};
  bool have_server_stats = false;
  {
    WireClient stats_client;
    if (stats_client.Connect(config.host, config.port).ok()) {
      auto frame = stats_client.Call(EncodeStatsRequest());
      if (frame.ok() && frame->ok()) {
        auto decoded = DecodeStatsResponse(frame->payload);
        if (decoded.ok()) {
          server = *decoded;
          have_server_stats = true;
        }
      }
    }
  }

  std::ostringstream json;
  json << "{"
       << "\"mode\":\"" << (config.rate > 0.0 ? "open" : "closed") << "\","
       << "\"connections\":" << config.connections << ","
       << "\"sessions_requested\":" << config.sessions << ","
       << "\"sessions_opened\":" << total.opens << ","
       << "\"sessions_completed\":" << total.completed << ","
       << "\"advance_requests\":" << total.advance_requests << ","
       << "\"advance_steps\":" << total.advance_steps << ","
       << "\"errors\":" << total.errors << ","
       << "\"elapsed_s\":" << JsonNum(elapsed) << ","
       << "\"sessions_per_sec\":"
       << JsonNum(static_cast<double>(total.completed) / elapsed) << ","
       << "\"steps_per_sec\":"
       << JsonNum(static_cast<double>(total.advance_steps) / elapsed) << ","
       << "\"request_p50_ms\":"
       << JsonNum(PercentileSorted(total.request_ms, 50.0)) << ","
       << "\"request_p99_ms\":"
       << JsonNum(PercentileSorted(total.request_ms, 99.0)) << ","
       << "\"request_p999_ms\":"
       << JsonNum(PercentileSorted(total.request_ms, 99.9)) << ","
       << "\"session_p50_ms\":"
       << JsonNum(PercentileSorted(total.session_ms, 50.0)) << ","
       << "\"session_p99_ms\":"
       << JsonNum(PercentileSorted(total.session_ms, 99.0)) << ","
       << "\"session_p999_ms\":"
       << JsonNum(PercentileSorted(total.session_ms, 99.9));
  if (have_server_stats) {
    json << ",\"server\":{"
         << "\"sessions_opened\":" << server.sessions_opened << ","
         << "\"sessions_completed\":" << server.sessions_completed << ","
         << "\"decisions\":" << server.decisions << ","
         << "\"observations_scored\":" << server.observations_scored << ","
         << "\"advance_steps\":" << server.advance_steps << ","
         << "\"frames_received\":" << server.frames_received << ","
         << "\"frames_sent\":" << server.frames_sent << ","
         << "\"protocol_errors\":" << server.protocol_errors << ","
         << "\"io_errors\":" << server.io_errors << ","
         << "\"decisions_per_sec\":"
         << JsonNum(static_cast<double>(server.decisions) / elapsed) << ","
         << "\"p50_replay_ms\":" << JsonNum(server.p50_replay_ms) << ","
         << "\"p95_replay_ms\":" << JsonNum(server.p95_replay_ms) << "}";
  }
  json << "}";
  std::cout << json.str() << std::endl;

  int rc = total.fatal.ok() && total.errors == 0 ? 0 : 1;
  if (config.check) {
    if (!have_server_stats) {
      std::cerr << "CHECK FAILED: could not fetch server stats\n";
      return 1;
    }
    // Exact reconciliation (valid when this loadgen is the only client):
    // what the client opened / completed / stepped must be exactly what
    // the service recorded and what the wire front-end routed.
    struct Check {
      const char* name;
      uint64_t client;
      uint64_t server;
    };
    const Check checks[] = {
        {"sessions_opened", total.opens, server.sessions_opened},
        {"wire_sessions_opened", total.opens, server.wire_sessions_opened},
        {"sessions_completed", total.completed, server.sessions_completed},
        {"observations_scored", total.advance_steps,
         server.observations_scored},
        {"advance_steps", total.advance_steps, server.advance_steps},
    };
    for (const Check& c : checks) {
      if (c.client != c.server) {
        std::cerr << "CHECK FAILED: " << c.name << " client=" << c.client
                  << " server=" << c.server << "\n";
        rc = 1;
      }
    }
    if (rc == 0) {
      std::cerr << "check: client and server counters reconcile exactly\n";
    }
  }
  return rc;
}

}  // namespace
}  // namespace rpe

int main(int argc, char** argv) { return rpe::Main(argc, argv); }
