// Command-line driver for the progress-estimation library:
//
//   rpe_cli run      --kind tpch --queries 200 --scale 10 --zipf 1.0
//                    --tuning partial --seed 1 --out records.csv
//       Build a workload, execute it, and write the pipeline records.
//
//   rpe_cli train    --records records.csv [--pool three|six|all]
//                    [--dynamic] [--trees 200] --out model.txt
//       Train the estimator-selection models and persist them.
//
//   rpe_cli evaluate --train a.csv --test b.csv [--pool ...] [--dynamic]
//       Train on one record set, evaluate on another, print the metrics.
//
//   rpe_cli inspect  --records records.csv
//       Summarize a record set (per-estimator error stats and win rates).
//
// All commands accept --threads N to size the training/selection worker
// pool (default: RPE_NUM_THREADS env var, else hardware concurrency).
// Trained models are identical at any thread count.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "harness/experiment.h"
#include "harness/runner.h"

namespace rpe {
namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "true";
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

Result<WorkloadKind> ParseKind(const std::string& s) {
  if (s == "tpch") return WorkloadKind::kTpch;
  if (s == "tpcds") return WorkloadKind::kTpcds;
  if (s == "real1") return WorkloadKind::kReal1;
  if (s == "real2") return WorkloadKind::kReal2;
  return Status::InvalidArgument("unknown workload kind: " + s);
}

Result<TuningLevel> ParseTuning(const std::string& s) {
  if (s == "untuned") return TuningLevel::kUntuned;
  if (s == "partial") return TuningLevel::kPartiallyTuned;
  if (s == "full") return TuningLevel::kFullyTuned;
  return Status::InvalidArgument("unknown tuning level: " + s);
}

std::vector<size_t> ParsePool(const std::string& s) {
  if (s == "three") return PoolOriginalThree();
  if (s == "all") return PoolAll();
  return PoolSix();
}

int CmdRun(const std::map<std::string, std::string>& flags) {
  WorkloadConfig config;
  auto kind = ParseKind(FlagOr(flags, "kind", "tpch"));
  if (!kind.ok()) {
    std::cerr << kind.status().ToString() << "\n";
    return 1;
  }
  config.kind = *kind;
  config.name = FlagOr(flags, "name", FlagOr(flags, "kind", "tpch"));
  config.scale = std::stod(FlagOr(flags, "scale", "10"));
  config.zipf = std::stod(FlagOr(flags, "zipf", "1.0"));
  auto tuning = ParseTuning(FlagOr(flags, "tuning", "partial"));
  if (!tuning.ok()) {
    std::cerr << tuning.status().ToString() << "\n";
    return 1;
  }
  config.tuning = *tuning;
  config.num_queries =
      static_cast<size_t>(std::stoul(FlagOr(flags, "queries", "200")));
  config.seed = std::stoull(FlagOr(flags, "seed", "1"));

  RunOptions options;
  options.progress_every = 100;
  std::cerr << "building + running workload " << config.name << " ...\n";
  auto records = BuildAndRun(config, options, FlagOr(flags, "tag", ""));
  if (!records.ok()) {
    std::cerr << records.status().ToString() << "\n";
    return 1;
  }
  const std::string out = FlagOr(flags, "out", "records.csv");
  auto save = SaveRecords(*records, out);
  if (!save.ok()) {
    std::cerr << save.ToString() << "\n";
    return 1;
  }
  std::cout << records->size() << " pipeline records -> " << out << "\n";
  return 0;
}

int CmdTrain(const std::map<std::string, std::string>& flags) {
  auto records = LoadRecords(FlagOr(flags, "records", "records.csv"));
  if (!records.ok()) {
    std::cerr << records.status().ToString() << "\n";
    return 1;
  }
  MartParams params = EstimatorSelector::DefaultParams();
  params.num_trees = std::stoi(FlagOr(flags, "trees", "200"));
  const bool dynamic = flags.count("dynamic") > 0;
  EstimatorSelector selector = EstimatorSelector::Train(
      *records, ParsePool(FlagOr(flags, "pool", "six")), dynamic, params);

  const std::string out = FlagOr(flags, "out", "model.txt");
  std::ofstream file(out);
  if (!file) {
    std::cerr << "cannot write " << out << "\n";
    return 1;
  }
  file << selector.pool().size() << " " << (dynamic ? 1 : 0) << "\n";
  for (size_t i = 0; i < selector.models().size(); ++i) {
    file << "ESTIMATOR "
         << EstimatorName(static_cast<EstimatorKind>(selector.pool()[i]))
         << "\n"
         << selector.models()[i].Serialize();
  }
  std::cout << "trained " << selector.models().size() << " models on "
            << records->size() << " records -> " << out << "\n";
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  auto train = LoadRecords(FlagOr(flags, "train", "train.csv"));
  auto test = LoadRecords(FlagOr(flags, "test", "test.csv"));
  if (!train.ok() || !test.ok()) {
    std::cerr << "failed to load records\n";
    return 1;
  }
  const auto pool = ParsePool(FlagOr(flags, "pool", "six"));
  const bool dynamic = flags.count("dynamic") > 0;
  MartParams params = EstimatorSelector::DefaultParams();
  params.num_trees = std::stoi(FlagOr(flags, "trees", "100"));
  const auto eval = TrainAndEvaluate(*train, *test, pool, dynamic, params);

  TablePrinter table({"Policy", "avg L1", "avg L2", "% optimal", ">5x"});
  for (size_t est : pool) {
    const auto m = EvaluateChoices(*test, FixedChoice(*test, est), pool);
    table.AddRow({EstimatorName(static_cast<EstimatorKind>(est)),
                  TablePrinter::Fmt(m.avg_l1, 4),
                  TablePrinter::Fmt(m.avg_l2, 4),
                  TablePrinter::Pct(m.pct_optimal),
                  TablePrinter::Pct(m.frac_ratio_gt5)});
  }
  table.AddRow({"EST. SELECTION", TablePrinter::Fmt(eval.metrics.avg_l1, 4),
                TablePrinter::Fmt(eval.metrics.avg_l2, 4),
                TablePrinter::Pct(eval.metrics.pct_optimal),
                TablePrinter::Pct(eval.metrics.frac_ratio_gt5)});
  table.Print();
  return 0;
}

int CmdInspect(const std::map<std::string, std::string>& flags) {
  auto records = LoadRecords(FlagOr(flags, "records", "records.csv"));
  if (!records.ok()) {
    std::cerr << records.status().ToString() << "\n";
    return 1;
  }
  std::cout << records->size() << " pipeline records\n";
  std::map<std::string, size_t> per_workload;
  for (const auto& r : *records) per_workload[r.workload]++;
  for (const auto& [w, n] : per_workload) {
    std::cout << "  " << w << ": " << n << "\n";
  }
  TablePrinter table({"Estimator", "avg L1", "win rate"});
  for (int e = 0; e < kNumSelectableEstimators; ++e) {
    const auto m =
        EvaluateChoices(*records, FixedChoice(*records, static_cast<size_t>(e)));
    table.AddRow({EstimatorName(static_cast<EstimatorKind>(e)),
                  TablePrinter::Fmt(m.avg_l1, 4),
                  TablePrinter::Pct(
                      FractionOptimal(*records, static_cast<size_t>(e)))});
  }
  table.Print();
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: rpe_cli <run|train|evaluate|inspect> [--flags]\n"
                 "       common flags: --threads N\n";
    return 2;
  }
  const std::string cmd = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (flags.count("threads") > 0) {
    ThreadPool::SetGlobalThreads(std::stoi(flags.at("threads")));
  }
  if (cmd == "run") return CmdRun(flags);
  if (cmd == "train") return CmdTrain(flags);
  if (cmd == "evaluate") return CmdEvaluate(flags);
  if (cmd == "inspect") return CmdInspect(flags);
  std::cerr << "unknown command: " << cmd << "\n";
  return 2;
}

}  // namespace
}  // namespace rpe

int main(int argc, char** argv) { return rpe::Main(argc, argv); }
