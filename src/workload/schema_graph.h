// Generic workload machinery: a schema join-graph plus a randomized query
// generator producing QuerySpec instances (join chains via random walks on
// the graph, randomized filters/aggregates/TOP, and physical join hints).
// All four workload families (TPC-H-like, TPC-DS-like, Real-1, Real-2) are
// instances of this machinery with different schemas and parameters.
#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "optimizer/query_spec.h"

namespace rpe {

/// \brief A filterable column with its value domain.
struct FilterableCol {
  size_t table = 0;        ///< index into SchemaGraph::tables
  std::string column;
  int64_t lo = 0;
  int64_t hi = 0;
  /// Probability that a filter on this column is an equality (hot/cold
  /// value) rather than a range.
  double eq_prob = 0.3;
};

/// \brief One joinable edge between two schema tables (either direction).
struct JoinPath {
  size_t table_a = 0;
  std::string col_a;
  size_t table_b = 0;
  std::string col_b;
  /// Expected matches in b per row of a (and vice versa); used to keep the
  /// generator's join chains from exploding (e.g. fact-dim-fact patterns).
  double fanout_ab = 1.0;
  double fanout_ba = 1.0;
};

/// \brief Join graph of one database schema.
struct SchemaGraph {
  std::vector<std::string> tables;  ///< table names (indices used by edges)
  std::vector<double> table_rows;   ///< row count per table (for sizing)
  std::vector<JoinPath> edges;
  std::vector<FilterableCol> filters;
  std::vector<std::pair<size_t, std::string>> group_cols;
};

/// \brief Knobs of the random query generator.
struct QueryGenParams {
  size_t min_joins = 1;
  size_t max_joins = 3;
  double filter_prob = 0.6;    ///< per referenced table
  double agg_prob = 0.4;
  double sort_stream_prob = 0.3;  ///< among aggregating queries
  double top_prob = 0.2;
  double order_by_prob = 0.15;
  // Join-hint mix (remainder = kAuto).
  double hash_hint_prob = 0.08;
  double merge_hint_prob = 0.07;
  double nlj_hint_prob = 0.05;
  /// Expected-output ceiling for the join chain (fan-out product times the
  /// start table size); edges that would exceed it are not taken.
  double max_est_output = 400000.0;
};

/// Generate one random query over the graph. Returns an error only if the
/// graph is unusable (no tables).
Result<QuerySpec> GenerateQuery(const SchemaGraph& graph,
                                const QueryGenParams& params,
                                const std::string& name, Rng* rng);

/// Generate `count` queries.
Result<std::vector<QuerySpec>> GenerateQueries(const SchemaGraph& graph,
                                               const QueryGenParams& params,
                                               const std::string& name_prefix,
                                               size_t count, Rng* rng);

}  // namespace rpe
