// Equi-depth histograms — the statistics backing the optimizer's cardinality
// estimates E_i. Estimates follow textbook assumptions (uniformity within
// buckets, independence across predicates, containment for joins), so they
// are *realistically wrong* on skewed or correlated data: exactly the error
// source that degrades the TGN estimator in the paper (§4.4.1).
#pragma once

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace rpe {

/// \brief Equi-depth histogram over one integer column.
class EquiDepthHistogram {
 public:
  /// Build from a column of `table` with at most `max_buckets` buckets.
  EquiDepthHistogram(const Table& table, size_t column,
                     size_t max_buckets = 32);

  uint64_t total_rows() const { return total_rows_; }
  /// Exact number of distinct values (computed at build time).
  uint64_t distinct_count() const { return distinct_; }
  int64_t min_value() const { return min_; }
  int64_t max_value() const { return max_; }
  size_t num_buckets() const { return buckets_.size(); }

  /// Estimated rows with value == v (bucket rows / bucket distinct).
  double EstimateEqual(int64_t v) const;
  /// Estimated rows with lo <= value <= hi.
  double EstimateRange(int64_t lo, int64_t hi) const;
  /// Estimated selectivity (fraction of rows) for the predicate forms used
  /// by the workloads.
  double EstimateSelectivity(int kind_eq_le_ge_between_ne, int64_t v1,
                             int64_t v2) const;

 private:
  struct Bucket {
    int64_t lo = 0;        ///< inclusive lower boundary
    int64_t hi = 0;        ///< inclusive upper boundary
    uint64_t rows = 0;
    uint64_t distinct = 0;
  };

  uint64_t total_rows_ = 0;
  uint64_t distinct_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  std::vector<Bucket> buckets_;
};

}  // namespace rpe
