// Estimator-selection tests: feature schema/extraction, record handling,
// selector training and the candidate pools.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "selection/selector.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;

class SelectionTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeSmallCatalog(); }

  static void AnnotateEstimates(PlanNode* node, double est) {
    node->est_rows = est;
    for (auto& c : node->children) AnnotateEstimates(c.get(), est * 0.8);
  }

  QueryRunResult Run(std::unique_ptr<PlanNode> root) {
    // Hand-built plans lack planner cardinality annotations; the static
    // features are defined over them, so fill plausible estimates.
    AnnotateEstimates(root.get(), 1000.0);
    auto plan = FinalizePlan(std::move(root), *catalog_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    plans_.push_back(std::move(plan).ValueOrDie());
    auto result = ExecutePlan(*plans_.back(), *catalog_);
    EXPECT_TRUE(result.ok());
    return std::move(result).ValueOrDie();
  }

  std::unique_ptr<Catalog> catalog_;
  std::vector<std::unique_ptr<PhysicalPlan>> plans_;
};

TEST_F(SelectionTest, SchemaLayoutIsStable) {
  const FeatureSchema& schema = FeatureSchema::Get();
  // 12 ops x 5 encodings + 8 extras static; 3 pairs x 5 markers + 6
  // estimators x 4 steps x 5 markers dynamic.
  EXPECT_EQ(schema.num_static_features(), 12u * 5 + 8);
  EXPECT_EQ(schema.num_features(),
            schema.num_static_features() + 3 * 5 + 6 * 4 * 5);
  EXPECT_EQ(schema.name(0), "Count_TableScan");
  EXPECT_EQ(schema.name(schema.num_static_features()), "DNEvsTGN_1");
}

TEST_F(SelectionTest, StaticFeaturesEncodePlanShape) {
  auto run = Run(MakeNestedLoopJoin(MakeTableScan("t_fact"),
                                    MakeIndexSeek("t_dim", "d_id"), 1));
  PipelineView view{&run, &run.pipelines[0]};
  const auto features = ExtractStaticFeatures(view);
  const FeatureSchema& schema = FeatureSchema::Get();

  auto feature_by_name = [&](const std::string& name) {
    for (size_t i = 0; i < schema.num_features(); ++i) {
      if (schema.name(i) == name) return features[i];
    }
    ADD_FAILURE() << "no feature " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(feature_by_name("Count_NestedLoopJoin"), 1.0);
  EXPECT_DOUBLE_EQ(feature_by_name("Count_IndexSeek"), 1.0);
  EXPECT_DOUBLE_EQ(feature_by_name("Count_TableScan"), 1.0);
  EXPECT_DOUBLE_EQ(feature_by_name("Count_HashJoin"), 0.0);
  EXPECT_DOUBLE_EQ(feature_by_name("HasNljInner"), 1.0);
  EXPECT_DOUBLE_EQ(feature_by_name("NumDrivers"), 1.0);
  // SelAtDN: scan E over total E, strictly between 0 and 1.
  const double sel_at_dn = feature_by_name("SelAtDN");
  EXPECT_GT(sel_at_dn, 0.0);
  EXPECT_LT(sel_at_dn, 1.0);
}

TEST_F(SelectionTest, SelAboveBelowRelations) {
  auto run = Run(MakeFilter(MakeTableScan("t_fact"), Predicate::Le(2, 25)));
  PipelineView view{&run, &run.pipelines[0]};
  const auto features = ExtractStaticFeatures(view);
  const FeatureSchema& schema = FeatureSchema::Get();
  auto idx = [&](const std::string& name) {
    for (size_t i = 0; i < schema.num_features(); ++i) {
      if (schema.name(i) == name) return i;
    }
    return static_cast<size_t>(-1);
  };
  // The filter node has a TableScan descendant -> SelAbove_TableScan
  // includes the filter's E; the scan is below a Filter ->
  // SelBelow_Filter includes the scan's E.
  EXPECT_GT(features[idx("SelAbove_TableScan")], 0.0);
  EXPECT_GT(features[idx("SelBelow_Filter")], 0.0);
  // The scan has no descendants -> nothing is "above" a Filter w.r.t. it.
  EXPECT_DOUBLE_EQ(features[idx("SelAbove_Filter")], 0.0);
}

TEST_F(SelectionTest, MarkerObservationsAreOrdered) {
  auto run = Run(MakeTableScan("t_fact"));
  PipelineView view{&run, &run.pipelines[0]};
  int prev = -1;
  for (double pct : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    const int obs = MarkerObservation(view, pct);
    ASSERT_GE(obs, 0) << pct;
    EXPECT_GE(obs, prev);
    prev = obs;
  }
}

TEST_F(SelectionTest, FullFeatureVectorHasSchemaArity) {
  auto run = Run(MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"),
                              0, 1));
  for (const auto& pipeline : run.pipelines) {
    if (pipeline.first_obs < 0) continue;
    PipelineView view{&run, &pipeline};
    const auto features = ExtractAllFeatures(view);
    EXPECT_EQ(features.size(), FeatureSchema::Get().num_features());
    for (double f : features) {
      EXPECT_TRUE(std::isfinite(f));
    }
  }
}

TEST_F(SelectionTest, RecordCapturesErrorsAndFeatures) {
  auto run = Run(MakeFilter(MakeTableScan("t_fact"), Predicate::Ge(2, 10)));
  PipelineView view{&run, &run.pipelines[0]};
  PipelineRecord record;
  ASSERT_TRUE(MakeRecord(view, "wl", "q1", "tag", &record));
  EXPECT_EQ(record.workload, "wl");
  EXPECT_EQ(record.l1.size(), static_cast<size_t>(kNumEstimatorKinds));
  EXPECT_GT(record.total_n, 0.0);
  EXPECT_LT(record.BestEstimator(),
            static_cast<size_t>(kNumSelectableEstimators));
}

TEST_F(SelectionTest, RecordSkipsShortPipelines) {
  auto run = Run(MakeTableScan("t_dim"));  // tiny: few observations
  PipelineView view{&run, &run.pipelines[0]};
  PipelineRecord record;
  EXPECT_FALSE(MakeRecord(view, "wl", "q", "", &record,
                          /*min_observations=*/100000));
}

TEST_F(SelectionTest, CsvRejectsMismatchedArityWithLineNumber) {
  auto run = Run(MakeFilter(MakeTableScan("t_fact"), Predicate::Ge(2, 10)));
  PipelineView view{&run, &run.pipelines[0]};
  PipelineRecord record;
  ASSERT_TRUE(MakeRecord(view, "wl", "q1", "tag", &record));
  const std::string csv = RecordsToCsv({record, record, record});
  ASSERT_TRUE(RecordsFromCsv(csv).ok());

  // Drop the last l2 column of the second data row: its l1/l2 arity no
  // longer matches SelectableEstimators and the row must be rejected with
  // its line number (header = line 1, so row 2 is line 3).
  std::vector<std::string> lines;
  std::istringstream in(csv);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  std::string truncated = lines[2].substr(0, lines[2].rfind(','));
  const std::string bad_arity =
      lines[0] + "\n" + lines[1] + "\n" + truncated + "\n" + lines[3] + "\n";
  auto result = RecordsFromCsv(bad_arity);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("columns"), std::string::npos);

  // Extra columns are equally a mismatch, not silently ignored.
  const std::string extra =
      lines[0] + "\n" + lines[1] + ",0.5\n" + lines[2] + "\n" + lines[3] +
      "\n";
  result = RecordsFromCsv(extra);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);

  // Non-numeric cells name the offending line too.
  std::string garbled = csv;
  const size_t pos = garbled.rfind(",");
  garbled.replace(pos + 1, garbled.size() - pos - 2, "not-a-number");
  result = RecordsFromCsv(garbled);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos)
      << result.status().ToString();

  // A fractional pipeline id is not silently truncated.
  std::string frac = csv;
  ASSERT_NE(frac.find("wl,q1,0,"), std::string::npos);
  frac.replace(frac.find("wl,q1,0,"), 8, "wl,q1,0.5,");
  result = RecordsFromCsv(frac);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("bad integer"), std::string::npos);

  // CRLF input still loads (the strict parser strips the trailing \r).
  std::string crlf;
  for (char c : csv) {
    if (c == '\n') crlf += "\r\n";
    else crlf += c;
  }
  auto crlf_result = RecordsFromCsv(crlf);
  EXPECT_TRUE(crlf_result.ok()) << crlf_result.status().ToString();
  EXPECT_EQ(crlf_result->size(), 3u);
}

TEST_F(SelectionTest, PoolsAreConsistent) {
  EXPECT_EQ(PoolOriginalThree().size(), 3u);
  EXPECT_EQ(PoolSix().size(), 6u);
  EXPECT_EQ(PoolAll().size(), static_cast<size_t>(kNumSelectableEstimators));
  for (size_t est : PoolSix()) {
    EXPECT_LT(est, static_cast<size_t>(kNumSelectableEstimators));
    EXPECT_NE(est, static_cast<size_t>(EstimatorKind::kSafe));
    EXPECT_NE(est, static_cast<size_t>(EstimatorKind::kPmax));
  }
}

namespace {

/// Synthetic records where the best estimator is a deterministic function
/// of one feature — a selector must learn this mapping.
std::vector<PipelineRecord> SyntheticRecords(size_t n, uint64_t seed) {
  const FeatureSchema& schema = FeatureSchema::Get();
  Rng rng(seed);
  std::vector<PipelineRecord> records;
  for (size_t i = 0; i < n; ++i) {
    PipelineRecord r;
    r.workload = "syn";
    r.query = "q" + std::to_string(i);
    r.features.assign(schema.num_features(), 0.0);
    const double signal = rng.NextDouble();
    r.features[0] = signal;                      // Count_TableScan as signal
    r.features[5] = rng.NextDouble();            // noise
    r.l1.assign(kNumEstimatorKinds, 0.5);
    r.l2.assign(kNumEstimatorKinds, 0.5);
    // DNE wins when signal < 0.5, TGN when >= 0.5.
    if (signal < 0.5) {
      r.l1[0] = 0.05;
      r.l1[1] = 0.4;
    } else {
      r.l1[0] = 0.4;
      r.l1[1] = 0.05;
    }
    r.l1[2] = 0.3;  // LUO mediocre everywhere
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace

TEST_F(SelectionTest, SelectorLearnsDeterministicRule) {
  const auto train = SyntheticRecords(600, 1);
  const auto test = SyntheticRecords(200, 2);
  MartParams params;
  params.num_trees = 40;
  params.tree.max_leaves = 8;
  EstimatorSelector selector = EstimatorSelector::Train(
      train, PoolOriginalThree(), /*use_dynamic=*/false, params);
  size_t correct = 0;
  for (const auto& r : test) {
    if (selector.SelectForRecord(r) == r.BestEstimator()) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.95);
}

TEST_F(SelectionTest, PredictErrorsAlignsWithPool) {
  const auto train = SyntheticRecords(300, 3);
  MartParams params;
  params.num_trees = 20;
  EstimatorSelector selector = EstimatorSelector::Train(
      train, PoolSix(), /*use_dynamic=*/true, params);
  const auto predicted = selector.PredictErrors(train[0].features);
  EXPECT_EQ(predicted.size(), 6u);
  EXPECT_TRUE(selector.uses_dynamic_features());
}

TEST_F(SelectionTest, FeatureImportanceConcentratesOnSignal) {
  const auto train = SyntheticRecords(800, 4);
  MartParams params;
  params.num_trees = 40;
  params.tree.max_leaves = 8;
  EstimatorSelector selector = EstimatorSelector::Train(
      train, PoolOriginalThree(), /*use_dynamic=*/false, params);
  const auto gains = selector.FeatureImportance();
  // Feature 0 carries all signal; feature 5 is pure noise.
  EXPECT_GT(gains[0], 10.0 * (gains[5] + 1e-12));
}

TEST_F(SelectionTest, ParallelTrainingIsByteIdenticalToSequential) {
  const auto train = SyntheticRecords(300, 5);
  MartParams params;
  params.num_trees = 15;
  params.tree.max_leaves = 8;
  ThreadPool sequential(1);
  ThreadPool parallel(4);

  params.pool = &sequential;
  const EstimatorSelector a = EstimatorSelector::Train(
      train, PoolOriginalThree(), /*use_dynamic=*/false, params);
  params.pool = &parallel;
  const EstimatorSelector b = EstimatorSelector::Train(
      train, PoolOriginalThree(), /*use_dynamic=*/false, params);

  ASSERT_EQ(a.models().size(), b.models().size());
  for (size_t i = 0; i < a.models().size(); ++i) {
    EXPECT_EQ(a.models()[i].Serialize(), b.models()[i].Serialize());
  }
  // And the compiled scoring path agrees decision-for-decision.
  for (const auto& r : train) {
    EXPECT_EQ(a.SelectForRecord(r), b.SelectForRecord(r));
    EXPECT_EQ(a.PredictErrors(r.features), b.PredictErrors(r.features));
  }
}

}  // namespace
}  // namespace rpe
