// Binary regression tree with best-first (leaf-wise) growth over binned
// features, fit to residuals with the MSE criterion — the weak learner
// inside MART (paper §4.2). Split search is histogram-based: one pass over
// a leaf's examples fills a HistogramSet (all features at once, streaming
// the column-major bin slabs), a per-feature sweep picks the best split,
// and each split derives the larger child's histograms by subtraction
// (parent − smaller child). Histogram accumulation and the sweep
// parallelize over feature blocks on a ThreadPool with an ordered
// reduction, so the fitted tree is identical to the sequential result at
// any thread count. The full pipeline is documented in docs/TRAINING.md.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mart/dataset.h"

namespace rpe {

class ThreadPool;

/// \brief Tree-growth parameters.
struct TreeParams {
  int max_leaves = 30;        ///< paper: 30 leaf nodes
  int min_examples_per_leaf = 8;
  double min_gain = 1e-12;    ///< minimum variance reduction to split
  /// Test/benchmark escape hatch: build every leaf's histograms directly
  /// instead of deriving siblings by subtraction. The subtraction path
  /// canonicalizes the winning feature's statistics from a direct
  /// re-accumulation, so everything entering the tree is free of
  /// subtraction rounding and the two modes fit identical trees unless
  /// two *different features'* split gains tie within that rounding
  /// (e.g. exactly duplicated columns), where the cross-feature election
  /// itself may differ (asserted identical on continuous fixtures by
  /// tests/mart_test.cpp); direct mode exists to prove that and to give
  /// benchmarks a no-subtraction baseline.
  bool force_direct_histograms = false;
};

/// Build every feature's histogram over the examples in `indices` into
/// `hist` (which must be sized for `data`, i.e. HistogramSet(data)): for
/// each feature f and bin b, the sum of `residuals[i]` and the count of
/// examples i in `indices` with bin(i, f) == b. One gather pass materializes
/// the leaf's residuals, then each feature streams its contiguous bin
/// column; when `indices` covers every example the gather and the index
/// indirection are skipped entirely (dense fast path). `indices` must be
/// strictly increasing. Accumulation parallelizes over feature blocks on
/// `pool` (nullptr = sequential); per-feature adds always run in index
/// order, so the result is bitwise identical at any thread count.
/// Exposed for tests and benchmarks; RegressionTree::Fit is the real user.
void BuildLeafHistograms(const BinnedDataset& data,
                         const std::vector<double>& residuals,
                         std::span<const uint32_t> indices,
                         HistogramSet* hist, ThreadPool* pool = nullptr);

/// One feature's histogram over a dense leaf: for i in [0, n) ascending,
/// sum[col[i]] += res[i] and cnt[col[i]] += 1. The inner kernel of the
/// dense BuildLeafHistograms/Fit paths, dispatched through common/simd.h:
/// the AVX2 variant detects uniform 32-byte runs in the bin column
/// (constant and near-sorted columns — binned monotone features — are
/// long runs) and keeps that bin's accumulator in a register across the
/// run; mixed chunks fall back to the scalar loop. Every per-bin add
/// still happens in ascending-i order, so the result is bit-identical to
/// the scalar reference on every input (tests/simd_test.cpp). Exposed for
/// the differential tests and benchmarks.
void AccumulateColumnDense(const uint8_t* col, const double* res, size_t n,
                           double* sum, uint32_t* cnt);

/// The always-compiled scalar reference for AccumulateColumnDense.
void AccumulateColumnDenseScalar(const uint8_t* col, const double* res,
                                 size_t n, double* sum, uint32_t* cnt);

/// \brief A fitted regression tree; predicts from raw feature vectors.
class RegressionTree {
 public:
  /// \brief One tree node; exposed read-only so FlatEnsemble can compile
  /// the ensemble into its contiguous layout.
  struct Node {
    int feature = -1;      ///< -1 for leaves
    double threshold = 0;  ///< go left iff x[feature] <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;    ///< leaf prediction
  };

  /// Fit to `residuals` (one per example of `data`). Optionally restrict to
  /// `example_indices` (stochastic boosting subsample); empty = all.
  /// Accumulates per-feature split gains into `feature_gains` if non-null.
  /// Histogram accumulation and split search parallelize across feature
  /// blocks on `pool` (nullptr = the global pool); results are independent
  /// of the thread count.
  static RegressionTree Fit(const BinnedDataset& data,
                            const std::vector<double>& residuals,
                            const std::vector<uint32_t>& example_indices,
                            const TreeParams& params,
                            std::vector<double>* feature_gains,
                            ThreadPool* pool = nullptr);

  /// Reassemble a tree from its node array (binary snapshot load path).
  /// `nodes[0]` must be the root; child indices must be in range.
  static Result<RegressionTree> FromNodes(std::vector<Node> nodes);

  double Predict(std::span<const double> features) const;
  double Predict(const std::vector<double>& features) const {
    return Predict(std::span<const double>(features));
  }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Compact text form (one node per line) for model persistence.
  std::string Serialize() const;
  static Result<RegressionTree> Deserialize(const std::string& text);

 private:
  std::vector<Node> nodes_;  // nodes_[0] is the root
};

}  // namespace rpe
