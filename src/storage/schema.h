// Schema metadata for the row-store substrate. All values are int64 for
// simplicity; columns carry a declared byte width so that the executor can
// maintain the bytes-read/written counters (R_i / W_i of paper §3.1) that the
// LUO estimator consumes — wide "string-like" columns simply declare larger
// widths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rpe {

/// A row is a flat vector of int64 values, one per schema column.
using Row = std::vector<int64_t>;
using RowId = uint64_t;

/// \brief One column: a name plus the byte width it contributes to a row.
struct ColumnDef {
  std::string name;
  /// Logical width in bytes (8 for plain integers, larger to model
  /// varchar/decimal payloads). Drives the bytes-processed counters.
  uint32_t width_bytes = 8;
};

/// \brief Ordered list of columns making up a table or intermediate result.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column with the given name, or error if absent.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Total declared byte width of one row.
  uint64_t row_width_bytes() const { return row_width_; }

  /// Schema of the concatenation of this and other (join output).
  Schema Concat(const Schema& other) const;

 private:
  std::vector<ColumnDef> columns_;
  uint64_t row_width_ = 0;
};

}  // namespace rpe
