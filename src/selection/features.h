// Feature extraction for estimator selection.
//
// Static features (paper §4.3), computed per pipeline before execution from
// the plan shape and optimizer estimates: per-operator-type Count_op and
// Card_op (the encoding of [11]) plus the relative-cardinality encodings
// SelAt_op / SelAbove_op / SelBelow_op and SelAtDN.
//
// Dynamic features (paper §4.4), computed from the observation stream once
// x% of the driver-node input has been consumed (x in {1,2,5,10,20}):
// pairwise estimator divergences (DNEvsTGN_x, ...) and estimator-vs-time
// correlation features Cor_{e,i,x} for i = 1..4.
#pragma once

#include <string>
#include <vector>

#include "progress/estimator.h"

namespace rpe {

/// Driver-consumption marker percentages (paper: {1, 2, 5, 10, 20}).
inline constexpr int kMarkerPercents[] = {1, 2, 5, 10, 20};
inline constexpr size_t kNumMarkers = 5;
/// Number of sub-markers per correlation feature (paper: k = 4).
inline constexpr size_t kCorSteps = 4;

/// \brief Names + layout of the full feature vector.
class FeatureSchema {
 public:
  static const FeatureSchema& Get();

  size_t num_features() const { return names_.size(); }
  size_t num_static_features() const { return num_static_; }
  const std::string& name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

 private:
  FeatureSchema();
  std::vector<std::string> names_;
  size_t num_static_ = 0;
};

/// Static features of a pipeline (uses initial estimates E0 from the plan).
std::vector<double> ExtractStaticFeatures(const PipelineView& view);

/// Full feature vector: static prefix followed by dynamic features computed
/// from observations up to the 20% driver marker. Missing markers yield 0.
std::vector<double> ExtractAllFeatures(const PipelineView& view);

/// Observation index of the first observation where the consumed driver
/// fraction reaches pct/100 (t{x} of §4.4.2), or -1 if never reached.
int MarkerObservation(const PipelineView& view, double pct);

}  // namespace rpe
