// MART learner tests: binning, tree fitting, boosting convergence,
// serialization, feature importance and the linear baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "mart/linear.h"
#include "mart/mart.h"

namespace rpe {
namespace {

Dataset MakeDataset(size_t n, uint64_t seed,
                    double (*f)(const std::vector<double>&)) {
  Dataset data(4);
  Rng rng(seed);
  std::vector<double> x(4);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.NextDouble();
    RPE_CHECK_OK(data.AddExample(x, f(x)));
  }
  return data;
}

double StepTarget(const std::vector<double>& x) {
  return (x[0] > 0.5 ? 1.0 : 0.0) + (x[1] > 0.3 ? 0.5 : 0.0);
}

double LinearTarget(const std::vector<double>& x) {
  return 2.0 * x[0] - 1.0 * x[1] + 0.25;
}

double NonlinearTarget(const std::vector<double>& x) {
  return x[0] * x[1] + (x[2] > 0.7 ? 0.8 : 0.1);
}

// --- Dataset / binning ---------------------------------------------------

TEST(DatasetTest, AddAndAccess) {
  Dataset data(2);
  ASSERT_TRUE(data.AddExample({1.0, 2.0}, 3.0).ok());
  ASSERT_TRUE(data.AddExample({4.0, 5.0}, 6.0).ok());
  EXPECT_EQ(data.num_examples(), 2u);
  EXPECT_DOUBLE_EQ(data.feature(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(data.target(1), 6.0);
  EXPECT_EQ(data.ExampleFeatures(0), (std::vector<double>{1.0, 2.0}));
  EXPECT_FALSE(data.AddExample({1.0}, 0.0).ok());  // arity mismatch
}

TEST(BinnedDatasetTest, FewDistinctValuesGetOwnBins) {
  Dataset data(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(data.AddExample({static_cast<double>(i % 3)}, 0.0).ok());
  }
  BinnedDataset binned(data, 255);
  EXPECT_EQ(binned.num_bins(0), 3u);
  // Values 0,1,2 -> bins 0,1,2.
  EXPECT_EQ(binned.bin(0, 0), 0);
  EXPECT_EQ(binned.bin(1, 0), 1);
  EXPECT_EQ(binned.bin(2, 0), 2);
}

TEST(BinnedDatasetTest, BinOrderRespectsValues) {
  Dataset data(1);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(data.AddExample({rng.NextDouble()}, 0.0).ok());
  }
  BinnedDataset binned(data, 64);
  EXPECT_LE(binned.num_bins(0), 64u);
  for (size_t i = 0; i + 1 < 500; ++i) {
    const double a = data.feature(i, 0), b = data.feature(i + 1, 0);
    if (a < b) {
      EXPECT_LE(binned.bin(i, 0), binned.bin(i + 1, 0));
    }
  }
}

// --- Regression tree -----------------------------------------------------

TEST(TreeTest, FitsStepFunction) {
  Dataset data = MakeDataset(2000, 21, StepTarget);
  BinnedDataset binned(data);
  std::vector<double> residuals(data.num_examples());
  for (size_t i = 0; i < data.num_examples(); ++i) {
    residuals[i] = data.target(i);
  }
  TreeParams params;
  params.max_leaves = 8;
  RegressionTree tree =
      RegressionTree::Fit(binned, residuals, {}, params, nullptr);
  EXPECT_LE(tree.num_leaves(), 8u);
  EXPECT_GE(tree.num_leaves(), 3u);
  // A step function in two features is learnable nearly exactly.
  double mse = 0.0;
  for (size_t i = 0; i < data.num_examples(); ++i) {
    const double d = tree.Predict(data.ExampleFeatures(i)) - data.target(i);
    mse += d * d;
  }
  mse /= static_cast<double>(data.num_examples());
  EXPECT_LT(mse, 0.01);
}

TEST(TreeTest, RespectsMinLeafSize) {
  Dataset data = MakeDataset(100, 22, StepTarget);
  BinnedDataset binned(data);
  std::vector<double> residuals(data.num_examples(), 1.0);
  TreeParams params;
  params.max_leaves = 64;
  params.min_examples_per_leaf = 50;
  RegressionTree tree =
      RegressionTree::Fit(binned, residuals, {}, params, nullptr);
  // 100 examples with min 50 per leaf allows at most one split.
  EXPECT_LE(tree.num_leaves(), 2u);
}

TEST(TreeTest, ConstantTargetYieldsSingleLeaf) {
  Dataset data = MakeDataset(500, 23, [](const std::vector<double>&) {
    return 7.0;
  });
  BinnedDataset binned(data);
  std::vector<double> residuals(data.num_examples(), 7.0);
  TreeParams params;
  RegressionTree tree =
      RegressionTree::Fit(binned, residuals, {}, params, nullptr);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_NEAR(tree.Predict({0.1, 0.2, 0.3, 0.4}), 7.0, 1e-9);
}

TEST(TreeTest, SerializationRoundTrip) {
  Dataset data = MakeDataset(1000, 24, NonlinearTarget);
  BinnedDataset binned(data);
  std::vector<double> residuals(data.num_examples());
  for (size_t i = 0; i < data.num_examples(); ++i) {
    residuals[i] = data.target(i);
  }
  TreeParams params;
  RegressionTree tree =
      RegressionTree::Fit(binned, residuals, {}, params, nullptr);
  auto restored = RegressionTree::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < 50; ++i) {
    const auto x = data.ExampleFeatures(i);
    EXPECT_DOUBLE_EQ(tree.Predict(x), restored->Predict(x));
  }
}

// --- MART ------------------------------------------------------------------

TEST(MartTest, TrainingLossDecreases) {
  Dataset data = MakeDataset(3000, 25, NonlinearTarget);
  MartParams params;
  params.num_trees = 40;
  MartModel model = MartModel::Train(data, params);
  const auto& curve = model.training_curve();
  ASSERT_EQ(curve.size(), 40u);
  EXPECT_LT(curve.back(), curve.front() * 0.3);
}

TEST(MartTest, BeatsMeanPredictor) {
  Dataset data = MakeDataset(3000, 26, StepTarget);
  MartModel model = MartModel::Train(data, {});
  double mean = 0.0;
  for (size_t i = 0; i < data.num_examples(); ++i) mean += data.target(i);
  mean /= static_cast<double>(data.num_examples());
  double mean_mse = 0.0;
  for (size_t i = 0; i < data.num_examples(); ++i) {
    mean_mse += (data.target(i) - mean) * (data.target(i) - mean);
  }
  mean_mse /= static_cast<double>(data.num_examples());
  EXPECT_LT(model.MeanSquaredError(data), mean_mse * 0.05);
}

TEST(MartTest, GeneralizesToFreshSample) {
  Dataset train = MakeDataset(4000, 27, NonlinearTarget);
  Dataset test = MakeDataset(1000, 28, NonlinearTarget);
  MartParams params;
  params.num_trees = 100;
  MartModel model = MartModel::Train(train, params);
  EXPECT_LT(model.MeanSquaredError(test), 0.01);
}

TEST(MartTest, SubsamplingStillLearns) {
  Dataset data = MakeDataset(4000, 29, StepTarget);
  MartParams params;
  params.num_trees = 80;
  params.subsample = 0.5;
  MartModel model = MartModel::Train(data, params);
  EXPECT_LT(model.MeanSquaredError(data), 0.02);
}

TEST(MartTest, FeatureImportanceIdentifiesSignal) {
  // Target depends only on features 0 and 1; 2 and 3 are noise.
  Dataset data = MakeDataset(4000, 30, StepTarget);
  MartParams params;
  params.num_trees = 50;
  MartModel model = MartModel::Train(data, params);
  const auto& gains = model.feature_gains();
  ASSERT_EQ(gains.size(), 4u);
  EXPECT_GT(gains[0], gains[2] * 10);
  EXPECT_GT(gains[1], gains[3] * 10);
}

TEST(MartTest, SerializationRoundTrip) {
  Dataset data = MakeDataset(1500, 31, NonlinearTarget);
  MartParams params;
  params.num_trees = 25;
  MartModel model = MartModel::Train(data, params);
  auto restored = MartModel::Deserialize(model.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_trees(), model.num_trees());
  for (size_t i = 0; i < 100; ++i) {
    const auto x = data.ExampleFeatures(i);
    EXPECT_DOUBLE_EQ(model.Predict(x), restored->Predict(x));
  }
}

TEST(MartTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(MartModel::Deserialize("not a model").ok());
  EXPECT_FALSE(MartModel::Deserialize("MART 0.5").ok());
}

TEST(MartTest, EmptyDatasetProducesConstantZero) {
  Dataset data(3);
  MartModel model = MartModel::Train(data, {});
  EXPECT_DOUBLE_EQ(model.Predict({1.0, 2.0, 3.0}), 0.0);
}

// --- Linear baseline -------------------------------------------------------

TEST(LinearTest, RecoversLinearTarget) {
  Dataset data = MakeDataset(2000, 32, LinearTarget);
  LinearModel model = LinearModel::Train(data);
  EXPECT_LT(model.MeanSquaredError(data), 1e-6);
}

TEST(LinearTest, UnderfitsNonlinearTargetVsMart) {
  Dataset data = MakeDataset(3000, 33, StepTarget);
  LinearModel linear = LinearModel::Train(data);
  MartParams params;
  params.num_trees = 60;
  MartModel mart = MartModel::Train(data, params);
  // The §4.2 claim: trees handle the non-linear dependence, linear can't.
  EXPECT_LT(mart.MeanSquaredError(data),
            linear.MeanSquaredError(data) * 0.5);
}

}  // namespace
}  // namespace rpe
