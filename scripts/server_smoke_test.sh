#!/usr/bin/env bash
# End-to-end smoke gate for the TCP serving front-end (wired into ctest
# as `server_smoke` and run in the CI build matrix):
#
#   1. `rpe_cli serve-tcp` starts on an ephemeral port (4 shards) and
#      prints the listening line.
#   2. A closed-loop `rpe_loadgen` burst completes every requested
#      session with zero errors, and its --check reconciliation passes:
#      client opens/completions/steps match the server's StatsResponse
#      counters exactly.
#   3. An open-loop burst against the same server also exits clean.
#   4. SIGTERM drains the server: it exits 0 and its final stats table
#      reports every connection closed and zero protocol/io errors.
#
# Usage: server_smoke_test.sh <path-to-rpe_cli> <path-to-rpe_loadgen>
set -u

CLI="${1:?usage: server_smoke_test.sh <rpe_cli> <rpe_loadgen>}"
LOADGEN="${2:?usage: server_smoke_test.sh <rpe_cli> <rpe_loadgen>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/rpe_server_smoke.XXXXXX")"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fails=0
note() { printf '%s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*"; fails=$((fails + 1)); }

SRV_OUT="$WORK/server_stdout.txt"
SRV_ERR="$WORK/server_stderr.txt"

# --- start the server on an ephemeral port --------------------------------
"$CLI" serve-tcp --kind tpch --queries 10 --scale 2 --shards 4 --trees 10 \
  >"$SRV_OUT" 2>"$SRV_ERR" &
SRV_PID=$!

# The workload run + training dominate startup; poll for the listening
# line (format pinned by rpe_cli serve-tcp).
PORT=""
for _ in $(seq 1 600); do
  if ! kill -0 "$SRV_PID" 2>/dev/null; then
    fail "server died during startup: $(cat "$SRV_ERR")"
    exit 1
  fi
  PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
          "$SRV_OUT" | head -n 1)"
  [ -n "$PORT" ] && break
  sleep 0.5
done
if [ -z "$PORT" ]; then
  fail "server never printed its listening line: $(cat "$SRV_ERR")"
  exit 1
fi
note "server up on port $PORT"

# --- closed-loop burst with exact reconciliation --------------------------
LG_OUT="$WORK/loadgen_closed.json"
if ! "$LOADGEN" --port "$PORT" --connections 8 --sessions 48 --steps 32 \
    --check >"$LG_OUT" 2>"$WORK/loadgen_closed_err.txt"; then
  fail "closed-loop loadgen failed: $(cat "$WORK/loadgen_closed_err.txt")"
fi
JSON="$(tail -n 1 "$LG_OUT")"
case "$JSON" in
  *'"sessions_completed":48'*) ;;
  *) fail "closed-loop run did not complete 48 sessions: $JSON" ;;
esac
case "$JSON" in
  *'"errors":0'*) ;;
  *) fail "closed-loop run reported errors: $JSON" ;;
esac
grep -q "counters reconcile exactly" "$WORK/loadgen_closed_err.txt" \
  || fail "closed-loop reconciliation line missing"

# --- open-loop burst (fixed arrival rate) ---------------------------------
if ! "$LOADGEN" --port "$PORT" --connections 4 --sessions 20 --steps 16 \
    --rate 200 >"$WORK/loadgen_open.json" \
    2>"$WORK/loadgen_open_err.txt"; then
  fail "open-loop loadgen failed: $(cat "$WORK/loadgen_open_err.txt")"
fi
case "$(tail -n 1 "$WORK/loadgen_open.json")" in
  *'"sessions_completed":20'*) ;;
  *) fail "open-loop run did not complete 20 sessions" ;;
esac

# --- SIGTERM drains to exit 0 ---------------------------------------------
kill -TERM "$SRV_PID"
SRV_RC=0
wait "$SRV_PID" || SRV_RC=$?
SRV_PID=""
[ "$SRV_RC" -eq 0 ] || fail "server exited $SRV_RC after SIGTERM"

table_value() {  # table_value <row-label-regex>
  awk -F'|' "/$1/ {gsub(/ /,\"\",\$3); print \$3}" "$SRV_OUT" | head -n 1
}
ACCEPTED="$(table_value 'connections accepted')"
CLOSED="$(table_value 'connections closed')"
PROTO_ERRS="$(table_value 'protocol errors')"
IO_ERRS="$(table_value 'io errors')"
OPENED="$(table_value 'sessions opened')"
COMPLETED="$(table_value 'sessions completed')"
[ -n "$ACCEPTED" ] && [ "$ACCEPTED" = "$CLOSED" ] \
  || fail "drain left connections open (accepted=$ACCEPTED closed=$CLOSED)"
[ "$PROTO_ERRS" = "0" ] || fail "protocol errors: $PROTO_ERRS"
[ "$IO_ERRS" = "0" ] || fail "io errors: $IO_ERRS"
# 48 closed-loop + 20 open-loop sessions, all driven to completion.
[ "$OPENED" = "68" ] || fail "server counted $OPENED opens, expected 68"
[ "$COMPLETED" = "68" ] \
  || fail "server counted $COMPLETED completions, expected 68"

if [ "$fails" -ne 0 ]; then
  note "$fails server smoke check(s) failed"
  exit 1
fi
note "all server smoke checks passed"
