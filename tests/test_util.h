// Shared fixtures for the test suite: a tiny deterministic catalog with
// known contents so operator results can be checked against brute force.
#pragma once

#include <memory>
#include <set>

#include "common/logging.h"
#include "selection/record.h"
#include "storage/catalog.h"
#include "storage/datagen.h"

namespace rpe::testing {

/// Random PipelineRecords at full schema arity (features uniform in
/// [0, 1), l1/l2 for every estimator kind): the fixture for
/// persistence/serving tests and benches that need structurally valid
/// records but no learnable labels.
inline std::vector<PipelineRecord> RandomRecords(size_t n, uint64_t seed) {
  const FeatureSchema& schema = FeatureSchema::Get();
  Rng rng(seed);
  std::vector<PipelineRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PipelineRecord r;
    r.workload = "synthetic";
    r.query = "q" + std::to_string(i % 7);
    r.pipeline_id = static_cast<int>(i % 3);
    r.tag = i % 2 == 0 ? "even" : "odd";
    r.total_n = 100.0 + rng.NextDouble() * 1000.0;
    r.features.reserve(schema.num_features());
    for (size_t f = 0; f < schema.num_features(); ++f) {
      r.features.push_back(rng.NextDouble());
    }
    for (int e = 0; e < kNumEstimatorKinds; ++e) {
      r.l1.push_back(rng.NextDouble() * 0.3);
      r.l2.push_back(rng.NextDouble() * 0.3);
    }
    records.push_back(std::move(r));
  }
  return records;
}

/// Build a catalog with two small tables:
///   t_fact(f_id, f_fk, f_val)   — 1000 rows, f_fk in [0,100), f_val [0,50)
///   t_dim(d_id, d_attr)         — 100 rows, d_id = 0..99
/// plus indexes on t_dim.d_id and t_fact.f_fk.
inline std::unique_ptr<Catalog> MakeSmallCatalog(uint64_t seed = 5) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(seed);
  {
    TableGenSpec spec;
    spec.name = "t_dim";
    spec.num_rows = 100;
    spec.columns = {{"d_id", 8}, {"d_attr", 8}};
    spec.generators = {ColumnGen::Sequential(), ColumnGen::Uniform(0, 9)};
    auto table = GenerateTable(spec, &rng);
    RPE_CHECK(table.ok());
    RPE_CHECK_OK(catalog->AddTable(std::move(table).ValueOrDie()));
  }
  {
    TableGenSpec spec;
    spec.name = "t_fact";
    spec.num_rows = 1000;
    spec.columns = {{"f_id", 8}, {"f_fk", 8}, {"f_val", 8}};
    spec.generators = {ColumnGen::Sequential(), ColumnGen::FkZipf(100, 1.0),
                       ColumnGen::Uniform(0, 49)};
    auto table = GenerateTable(spec, &rng);
    RPE_CHECK(table.ok());
    RPE_CHECK_OK(catalog->AddTable(std::move(table).ValueOrDie()));
  }
  RPE_CHECK_OK(catalog->CreateIndex("t_dim", "d_id"));
  RPE_CHECK_OK(catalog->CreateIndex("t_fact", "f_fk"));
  return catalog;
}

}  // namespace rpe::testing
