#include "common/crc32.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstring>

#include "common/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#define RPE_CRC32_PCLMUL 1
#include <immintrin.h>
#endif

namespace rpe {
namespace {

static_assert(std::endian::native == std::endian::little,
              "the sliced CRC kernel folds 8-byte chunks little-endian");

// Slicing-by-8 tables for the reflected polynomial 0xEDB88320: table 0 is
// the classic byte-at-a-time table; table s advances a byte by s further
// zero bytes, so eight table lookups retire eight input bytes per
// iteration instead of one. Bit-identical to the byte-at-a-time CRC —
// only the update schedule changes. This sits under every snapshot
// encode/load (the whole payload is checksummed), including the zero-copy
// mmap path where it is the dominant cost.
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (size_t s = 1; s < 8; ++s) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[s][i] =
          tables[0][tables[s - 1][i] & 0xFFu] ^ (tables[s - 1][i] >> 8);
    }
  }
  return tables;
}

#ifdef RPE_CRC32_PCLMUL

/// PCLMULQDQ fold over the raw (pre-inverted) CRC register, the
/// Gopal/Ozturk Intel-whitepaper reduction with the zlib constants for
/// the reflected IEEE polynomial: four 128-bit accumulators fold 64 input
/// bytes per iteration, collapse to one accumulator, then to 64 bits, and
/// a Barrett reduction yields the 32-bit register. Requires size >= 64
/// and size % 16 == 0; the caller feeds the tail to the scalar kernel.
__attribute__((target("pclmul,sse4.1"))) uint32_t Crc32FoldRaw(
    const unsigned char* buf, size_t len, uint32_t crc) {
  alignas(16) static const uint64_t k1k2[2] = {0x0154442bd4, 0x01c6e41596};
  alignas(16) static const uint64_t k3k4[2] = {0x01751997d0, 0x00ccaa009e};
  alignas(16) static const uint64_t k5k0[2] = {0x0163cd6124, 0x0000000000};
  alignas(16) static const uint64_t poly[2] = {0x01db710641, 0x01f7011641};

  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 16));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 32));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 48));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));

  __m128i k = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));
  buf += 64;
  len -= 64;

  while (len >= 64) {
    const __m128i x5 = _mm_clmulepi64_si128(x1, k, 0x00);
    const __m128i x6 = _mm_clmulepi64_si128(x2, k, 0x00);
    const __m128i x7 = _mm_clmulepi64_si128(x3, k, 0x00);
    const __m128i x8 = _mm_clmulepi64_si128(x4, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k, 0x11);
    x1 = _mm_xor_si128(
        _mm_xor_si128(x1, x5),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf)));
    x2 = _mm_xor_si128(
        _mm_xor_si128(x2, x6),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 16)));
    x3 = _mm_xor_si128(
        _mm_xor_si128(x3, x7),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 32)));
    x4 = _mm_xor_si128(
        _mm_xor_si128(x4, x8),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 48)));
    buf += 64;
    len -= 64;
  }

  // Fold the four accumulators into one.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));
  __m128i t = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x2);
  t = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x3);
  t = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x4);

  // Remaining whole 16-byte blocks.
  while (len >= 16) {
    t = _mm_clmulepi64_si128(x1, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x1 = _mm_xor_si128(
        _mm_xor_si128(x1, t),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf)));
    buf += 16;
    len -= 16;
  }

  // 128 -> 64 bits.
  t = _mm_clmulepi64_si128(x1, k, 0x10);
  const __m128i low32 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), t);
  k = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5k0));
  t = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, low32);
  x1 = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_xor_si128(x1, t);

  // Barrett reduction 64 -> 32 bits.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(poly));
  t = _mm_and_si128(x1, low32);
  t = _mm_clmulepi64_si128(t, k, 0x10);
  t = _mm_and_si128(t, low32);
  t = _mm_clmulepi64_si128(t, k, 0x00);
  x1 = _mm_xor_si128(x1, t);
  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

/// Dispatch target for the sse42+ tiers: fold the body, chain the scalar
/// kernel over the sub-16-byte tail. Seed chaining is exact — the fold
/// consumes and produces the same CRC register the sliced kernel uses.
uint32_t Crc32Pclmul(const void* data, size_t size, uint32_t seed) {
  if (size < 64) return Crc32Scalar(data, size, seed);
  const auto* bytes = static_cast<const unsigned char*>(data);
  const size_t body = size & ~static_cast<size_t>(15);
  const uint32_t folded =
      Crc32FoldRaw(bytes, body, seed ^ 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
  return Crc32Scalar(bytes + body, size - body, folded);
}

#endif  // RPE_CRC32_PCLMUL

using CrcFn = uint32_t (*)(const void*, size_t, uint32_t);

std::atomic<CrcFn> g_crc32{&Crc32Scalar};

const char* BindCrc32(simd::Tier tier) {
#ifdef RPE_CRC32_PCLMUL
  if (tier >= simd::Tier::kSse42) {
    g_crc32.store(&Crc32Pclmul, std::memory_order_relaxed);
    return "pclmul";
  }
#else
  (void)tier;
#endif
  g_crc32.store(&Crc32Scalar, std::memory_order_relaxed);
  return "slice8";
}

const simd::internal::KernelRegistrar kRegistrar("crc32", &BindCrc32);

}  // namespace

uint32_t Crc32Scalar(const void* data, size_t size, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      BuildTables();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, bytes, sizeof chunk);
    chunk ^= c;  // the CRC folds into the low (first) four bytes
    c = kTables[7][chunk & 0xFFu] ^ kTables[6][(chunk >> 8) & 0xFFu] ^
        kTables[5][(chunk >> 16) & 0xFFu] ^
        kTables[4][(chunk >> 24) & 0xFFu] ^
        kTables[3][(chunk >> 32) & 0xFFu] ^
        kTables[2][(chunk >> 40) & 0xFFu] ^
        kTables[1][(chunk >> 48) & 0xFFu] ^ kTables[0][chunk >> 56];
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    c = kTables[0][(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  return g_crc32.load(std::memory_order_relaxed)(data, size, seed);
}

}  // namespace rpe
