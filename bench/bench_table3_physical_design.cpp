// Table 3: sensitivity to physical-design differences between training and
// test workloads (TPC-H under fully / partially / un-tuned designs; train
// on two designs, test on the third).
#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

int main() {
  const auto records = TpchVariantRecords("design");
  RunSensitivityTable(
      "physical design", {"fully", "partially", "untuned"}, records,
      "=== Table 3: varying the physical design between test/training "
      "sets ===");
  return 0;
}
