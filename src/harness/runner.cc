#include "harness/runner.h"

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "common/logging.h"
#include "exec/executor.h"

namespace rpe {

Result<OwnedRun> RunQuery(const Workload& workload, const QuerySpec& spec,
                          const RunOptions& options) {
  CardinalityEstimator card(workload.catalog.get());
  Planner planner(workload.catalog.get(), &card, options.planner);
  RPE_ASSIGN_OR_RETURN(auto plan, planner.Plan(spec));
  RPE_ASSIGN_OR_RETURN(
      QueryRunResult result,
      ExecutePlan(*plan, *workload.catalog, options.exec));
  OwnedRun run;
  run.plan = std::move(plan);
  run.result = std::move(result);
  run.result.plan = run.plan.get();
  return run;
}

Result<std::vector<PipelineRecord>> RunWorkload(const Workload& workload,
                                                const RunOptions& options,
                                                const std::string& tag) {
  // One histogram store for the whole workload (statistics are per
  // database, not per query).
  CardinalityEstimator card(workload.catalog.get());
  Planner planner(workload.catalog.get(), &card, options.planner);

  std::vector<PipelineRecord> records;
  size_t failed = 0;
  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    const QuerySpec& spec = workload.queries[qi];
    auto plan_result = planner.Plan(spec);
    if (!plan_result.ok()) {
      ++failed;
      continue;
    }
    std::unique_ptr<PhysicalPlan> plan = std::move(plan_result).ValueOrDie();
    auto run_result = ExecutePlan(*plan, *workload.catalog, options.exec);
    if (!run_result.ok()) {
      ++failed;
      continue;
    }
    QueryRunResult run = std::move(run_result).ValueOrDie();
    run.plan = plan.get();
    for (const Pipeline& pipeline : run.pipelines) {
      PipelineView view{&run, &pipeline};
      PipelineRecord record;
      if (MakeRecord(view, workload.config.name, spec.name, tag, &record,
                     options.min_observations)) {
        if (options.on_record) options.on_record(record);
        records.push_back(std::move(record));
      }
    }
    if (options.progress_every > 0 && (qi + 1) % options.progress_every == 0) {
      std::cerr << "[" << workload.config.name << "] " << (qi + 1) << "/"
                << workload.queries.size() << " queries, "
                << records.size() << " records\n";
    }
  }
  if (failed > workload.queries.size() / 4) {
    return Status::Internal("too many query failures in workload " +
                            workload.config.name + ": " +
                            std::to_string(failed));
  }
  return records;
}

Result<std::vector<PipelineRecord>> BuildAndRun(const WorkloadConfig& config,
                                                const RunOptions& options,
                                                const std::string& tag) {
  RPE_ASSIGN_OR_RETURN(Workload workload, BuildWorkload(config));
  return RunWorkload(workload, options, tag);
}

std::string RecordCacheDir() {
  const char* env = std::getenv("RPE_CACHE_DIR");
  std::string dir = env != nullptr ? env : "rpe_record_cache";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

Result<std::vector<PipelineRecord>> CachedRecords(const std::string& name,
                                                  const WorkloadConfig& config,
                                                  const RunOptions& options,
                                                  const std::string& tag) {
  const std::string path = RecordCacheDir() + "/" + name + ".csv";
  if (std::filesystem::exists(path)) {
    auto loaded = LoadRecords(path);
    if (loaded.ok()) return loaded;
    // Fall through to recompute on a corrupt cache file.
  }
  RPE_ASSIGN_OR_RETURN(std::vector<PipelineRecord> records,
                       BuildAndRun(config, options, tag));
  RPE_RETURN_NOT_OK(SaveRecords(records, path));
  return records;
}

}  // namespace rpe
