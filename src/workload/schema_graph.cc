#include "workload/schema_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace rpe {

namespace {

/// Position of `schema_table` in the query's table list, or npos.
size_t FindUsed(const std::vector<size_t>& used, size_t schema_table) {
  for (size_t i = 0; i < used.size(); ++i) {
    if (used[i] == schema_table) return i;
  }
  return static_cast<size_t>(-1);
}

JoinHint RandomHint(const QueryGenParams& params, Rng* rng) {
  const double u = rng->NextDouble();
  if (u < params.hash_hint_prob) return JoinHint::kHash;
  if (u < params.hash_hint_prob + params.merge_hint_prob) {
    return JoinHint::kMerge;
  }
  if (u < params.hash_hint_prob + params.merge_hint_prob +
              params.nlj_hint_prob) {
    return JoinHint::kNestedLoop;
  }
  return JoinHint::kAuto;
}

}  // namespace

Result<QuerySpec> GenerateQuery(const SchemaGraph& graph,
                                const QueryGenParams& params,
                                const std::string& name, Rng* rng) {
  if (graph.tables.empty()) {
    return Status::InvalidArgument("empty schema graph");
  }
  QuerySpec spec;
  spec.name = name;

  const size_t target_joins =
      params.min_joins +
      static_cast<size_t>(
          rng->NextUInt(params.max_joins - params.min_joins + 1));

  // Random-walk a connected join chain.
  std::vector<size_t> used;  // schema table index per query position
  const size_t start = static_cast<size_t>(rng->NextUInt(graph.tables.size()));
  used.push_back(start);
  spec.tables.push_back(graph.tables[start]);

  double est_size = graph.table_rows.empty()
                        ? 1000.0
                        : graph.table_rows[start];
  size_t attempts = 0;
  while (spec.joins.size() < target_joins && attempts < 64) {
    ++attempts;
    // Candidate edges: connect a used table with an unused one, skipping
    // edges whose fan-out would blow the output-size ceiling.
    std::vector<std::pair<const JoinPath*, bool>> candidates;  // (edge, a_used)
    for (const auto& e : graph.edges) {
      const bool a_used = FindUsed(used, e.table_a) != static_cast<size_t>(-1);
      const bool b_used = FindUsed(used, e.table_b) != static_cast<size_t>(-1);
      if (a_used && !b_used &&
          est_size * e.fanout_ab <= params.max_est_output) {
        candidates.push_back({&e, true});
      }
      if (b_used && !a_used &&
          est_size * e.fanout_ba <= params.max_est_output) {
        candidates.push_back({&e, false});
      }
    }
    if (candidates.empty()) break;
    const auto& [edge, a_used] =
        candidates[static_cast<size_t>(rng->NextUInt(candidates.size()))];
    est_size *= a_used ? edge->fanout_ab : edge->fanout_ba;
    JoinEdge j;
    if (a_used) {
      j.left_idx = FindUsed(used, edge->table_a);
      j.left_col = edge->col_a;
      j.right_col = edge->col_b;
      used.push_back(edge->table_b);
      spec.tables.push_back(graph.tables[edge->table_b]);
    } else {
      j.left_idx = FindUsed(used, edge->table_b);
      j.left_col = edge->col_b;
      j.right_col = edge->col_a;
      used.push_back(edge->table_a);
      spec.tables.push_back(graph.tables[edge->table_a]);
    }
    j.hint = RandomHint(params, rng);
    spec.joins.push_back(std::move(j));
  }

  // Filters: one per referenced table with probability filter_prob.
  for (size_t pos = 0; pos < used.size(); ++pos) {
    if (!rng->NextBool(params.filter_prob)) continue;
    std::vector<const FilterableCol*> cols;
    for (const auto& fc : graph.filters) {
      if (fc.table == used[pos]) cols.push_back(&fc);
    }
    if (cols.empty()) continue;
    const FilterableCol& fc =
        *cols[static_cast<size_t>(rng->NextUInt(cols.size()))];
    FilterSpec f;
    f.table_idx = pos;
    f.column = fc.column;
    if (rng->NextBool(fc.eq_prob)) {
      f.kind = Predicate::Kind::kEq;
      f.v1 = rng->NextInt(fc.lo, fc.hi);
    } else {
      // Range covering 5%..60% of the domain.
      const double width_frac = 0.05 + rng->NextDouble() * 0.55;
      const int64_t domain = fc.hi - fc.lo + 1;
      const int64_t width = std::max<int64_t>(
          1, static_cast<int64_t>(width_frac * static_cast<double>(domain)));
      const int64_t lo = rng->NextInt(fc.lo, std::max(fc.lo, fc.hi - width));
      f.kind = Predicate::Kind::kBetween;
      f.v1 = lo;
      f.v2 = std::min(fc.hi, lo + width);
    }
    spec.filters.push_back(std::move(f));
  }

  // Aggregation.
  if (rng->NextBool(params.agg_prob)) {
    std::vector<std::pair<size_t, std::string>> cands;  // (query pos, col)
    for (const auto& [t, col] : graph.group_cols) {
      const size_t pos = FindUsed(used, t);
      if (pos != static_cast<size_t>(-1)) cands.push_back({pos, col});
    }
    if (!cands.empty()) {
      AggSpec agg;
      agg.group_cols.push_back(
          cands[static_cast<size_t>(rng->NextUInt(cands.size()))]);
      // Occasionally a second group column.
      if (cands.size() > 1 && rng->NextBool(0.25)) {
        auto second = cands[static_cast<size_t>(rng->NextUInt(cands.size()))];
        if (second != agg.group_cols[0]) agg.group_cols.push_back(second);
      }
      agg.prefer_sort_stream = agg.group_cols.size() == 1 &&
                               rng->NextBool(params.sort_stream_prob);
      spec.agg = std::move(agg);
    }
  }

  // ORDER BY (only without aggregation, over a group-able column).
  if (!spec.agg.has_value() && rng->NextBool(params.order_by_prob)) {
    std::vector<std::pair<size_t, std::string>> cands;
    for (const auto& [t, col] : graph.group_cols) {
      const size_t pos = FindUsed(used, t);
      if (pos != static_cast<size_t>(-1)) cands.push_back({pos, col});
    }
    if (!cands.empty()) {
      spec.order_by =
          cands[static_cast<size_t>(rng->NextUInt(cands.size()))];
    }
  }

  // TOP.
  if (rng->NextBool(params.top_prob)) {
    spec.top_limit = static_cast<uint64_t>(rng->NextInt(10, 1000));
  }
  return spec;
}

Result<std::vector<QuerySpec>> GenerateQueries(const SchemaGraph& graph,
                                               const QueryGenParams& params,
                                               const std::string& name_prefix,
                                               size_t count, Rng* rng) {
  std::vector<QuerySpec> specs;
  specs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    RPE_ASSIGN_OR_RETURN(
        QuerySpec spec,
        GenerateQuery(graph, params, name_prefix + std::to_string(i), rng));
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace rpe
