#include "common/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace rpe {
namespace {

static_assert(std::endian::native == std::endian::little,
              "the sliced CRC kernel folds 8-byte chunks little-endian");

// Slicing-by-8 tables for the reflected polynomial 0xEDB88320: table 0 is
// the classic byte-at-a-time table; table s advances a byte by s further
// zero bytes, so eight table lookups retire eight input bytes per
// iteration instead of one. Bit-identical to the byte-at-a-time CRC —
// only the update schedule changes. This sits under every snapshot
// encode/load (the whole payload is checksummed), including the zero-copy
// mmap path where it is the dominant cost.
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (size_t s = 1; s < 8; ++s) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[s][i] =
          tables[0][tables[s - 1][i] & 0xFFu] ^ (tables[s - 1][i] >> 8);
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      BuildTables();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, bytes, sizeof chunk);
    chunk ^= c;  // the CRC folds into the low (first) four bytes
    c = kTables[7][chunk & 0xFFu] ^ kTables[6][(chunk >> 8) & 0xFFu] ^
        kTables[5][(chunk >> 16) & 0xFFu] ^
        kTables[4][(chunk >> 24) & 0xFFu] ^
        kTables[3][(chunk >> 32) & 0xFFu] ^
        kTables[2][(chunk >> 40) & 0xFFu] ^
        kTables[1][(chunk >> 48) & 0xFFu] ^ kTables[0][chunk >> 56];
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    c = kTables[0][(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace rpe
