#include "selection/monitor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "selection/features.h"

namespace rpe {

ProgressMonitor::ProgressMonitor(const EstimatorSelector* static_selector,
                                 const EstimatorSelector* dynamic_selector,
                                 double revision_marker_pct)
    : static_selector_(static_selector),
      dynamic_selector_(dynamic_selector),
      revision_marker_pct_(revision_marker_pct) {
  RPE_CHECK(static_selector_ != nullptr);
  RPE_CHECK(dynamic_selector_ != nullptr);
  RPE_CHECK(!static_selector_->uses_dynamic_features());
  RPE_CHECK(dynamic_selector_->uses_dynamic_features());
}

std::vector<ProgressMonitor::PipelineDecision> ProgressMonitor::DecideForRun(
    const QueryRunResult& run) const {
  std::vector<PipelineDecision> decisions;
  decisions.reserve(run.pipelines.size());
  for (const Pipeline& pipeline : run.pipelines) {
    PipelineDecision d;
    d.pipeline_id = pipeline.id;
    PipelineView view{&run, &pipeline};
    if (pipeline.first_obs < 0) {
      decisions.push_back(d);
      continue;
    }
    // Static choice: available before the pipeline starts. The static
    // selector reads only the static prefix, so no padding is needed.
    d.initial_choice = static_selector_->Select(ExtractStaticFeatures(view));
    // Dynamic revision at the driver marker, if the pipeline gets there.
    d.revision_obs = MarkerObservation(view, revision_marker_pct_);
    if (d.revision_obs >= 0) {
      d.revised_choice = dynamic_selector_->Select(ExtractAllFeatures(view));
    }
    decisions.push_back(d);
  }
  return decisions;
}

namespace {

/// Score `rows` through sel.SelectBatch into `out` (resized to match).
void SelectRowsInto(const EstimatorSelector& sel,
                    const std::vector<std::vector<double>>& rows,
                    std::vector<size_t>* out) {
  std::vector<const std::vector<double>*> ptrs(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) ptrs[i] = &rows[i];
  out->resize(rows.size());
  sel.SelectBatch(ptrs, *out);
}

}  // namespace

std::vector<std::vector<ProgressMonitor::PipelineDecision>>
ProgressMonitor::DecideForRuns(
    std::span<const QueryRunResult* const> runs) const {
  std::vector<std::vector<PipelineDecision>> all(runs.size());
  // Gather pass: the decision skeletons plus the rows to score — static
  // features for every started pipeline, the full vector for every
  // pipeline that reaches the revision marker.
  struct Slot {
    size_t run;
    size_t pipe;
  };
  std::vector<std::vector<double>> static_rows;
  std::vector<std::vector<double>> dynamic_rows;
  std::vector<Slot> static_slots;
  std::vector<Slot> dynamic_slots;
  for (size_t r = 0; r < runs.size(); ++r) {
    const QueryRunResult& run = *runs[r];
    all[r].reserve(run.pipelines.size());
    for (const Pipeline& pipeline : run.pipelines) {
      PipelineDecision d;
      d.pipeline_id = pipeline.id;
      if (pipeline.first_obs >= 0) {
        PipelineView view{&run, &pipeline};
        static_slots.push_back({r, all[r].size()});
        static_rows.push_back(ExtractStaticFeatures(view));
        d.revision_obs = MarkerObservation(view, revision_marker_pct_);
        if (d.revision_obs >= 0) {
          dynamic_slots.push_back({r, all[r].size()});
          dynamic_rows.push_back(ExtractAllFeatures(view));
        }
      }
      all[r].push_back(d);
    }
  }
  // Scatter pass: two batched scoring calls, choices back to their slots.
  std::vector<size_t> choices;
  SelectRowsInto(*static_selector_, static_rows, &choices);
  for (size_t i = 0; i < static_slots.size(); ++i) {
    all[static_slots[i].run][static_slots[i].pipe].initial_choice =
        choices[i];
  }
  SelectRowsInto(*dynamic_selector_, dynamic_rows, &choices);
  for (size_t i = 0; i < dynamic_slots.size(); ++i) {
    all[dynamic_slots[i].run][dynamic_slots[i].pipe].revised_choice =
        choices[i];
  }
  return all;
}

double ProgressMonitor::PipelineProgress(const QueryRunResult& run,
                                         const PipelineDecision& decision,
                                         size_t oi) const {
  const Pipeline& pipeline =
      run.pipelines[static_cast<size_t>(decision.pipeline_id)];
  if (pipeline.first_obs < 0) return 0.0;
  PipelineView view{&run, &pipeline};
  const bool revised = decision.revised_choice.has_value() &&
                       static_cast<int>(oi) >= decision.revision_obs;
  const size_t choice =
      revised ? *decision.revised_choice : decision.initial_choice;
  return GetEstimator(static_cast<EstimatorKind>(choice)).Estimate(view, oi);
}

double ProgressMonitor::QueryProgressAt(
    const QueryRunResult& run,
    const std::vector<PipelineDecision>& decisions, size_t oi) const {
  RPE_CHECK_EQ(decisions.size(), run.pipelines.size());
  const Observation& obs = run.observations[oi];
  double total_e = 0.0;
  std::vector<double> weights(run.pipelines.size(), 0.0);
  for (size_t p = 0; p < run.pipelines.size(); ++p) {
    double e = 0.0;
    for (int id : run.pipelines[p].nodes) {
      e += obs.e[static_cast<size_t>(id)];
    }
    weights[p] = e;
    total_e += e;
  }
  if (total_e <= 0.0) return 0.0;
  double progress = 0.0;
  for (size_t p = 0; p < run.pipelines.size(); ++p) {
    const Pipeline& pipeline = run.pipelines[p];
    double value;
    if (pipeline.first_obs < 0 ||
        static_cast<int>(oi) < pipeline.first_obs) {
      value = 0.0;
    } else if (static_cast<int>(oi) > pipeline.last_obs) {
      value = 1.0;
    } else {
      value = PipelineProgress(run, decisions[p], oi);
    }
    progress += value * (weights[p] / total_e);
  }
  return std::clamp(progress, 0.0, 1.0);
}

std::vector<double> ProgressMonitor::ReplayQueryProgress(
    const QueryRunResult& run) const {
  const auto decisions = DecideForRun(run);
  std::vector<double> series;
  series.reserve(run.observations.size());
  for (size_t oi = 0; oi < run.observations.size(); ++oi) {
    series.push_back(QueryProgressAt(run, decisions, oi));
  }
  return series;
}

double ProgressMonitor::ReplayL1Error(const QueryRunResult& run) const {
  if (run.observations.empty() || run.total_time <= 0.0) return 0.0;
  const auto series = ReplayQueryProgress(run);
  double sum = 0.0;
  for (size_t oi = 0; oi < series.size(); ++oi) {
    const double truth = run.observations[oi].vtime / run.total_time;
    sum += std::abs(series[oi] - std::clamp(truth, 0.0, 1.0));
  }
  return sum / static_cast<double>(series.size());
}

}  // namespace rpe
