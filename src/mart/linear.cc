#include "mart/linear.h"

#include <cmath>

#include "common/logging.h"

namespace rpe {

LinearModel LinearModel::Train(const Dataset& data, double ridge_lambda) {
  LinearModel model;
  const size_t n = data.num_examples();
  const size_t f = data.num_features();
  model.weights_.assign(f, 0.0);
  model.means_.assign(f, 0.0);
  model.scales_.assign(f, 1.0);
  if (n == 0) return model;

  // Standardize features.
  for (size_t j = 0; j < f; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) mean += data.feature(i, j);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = data.feature(i, j) - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    model.means_[j] = mean;
    model.scales_[j] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  double target_mean = 0.0;
  for (size_t i = 0; i < n; ++i) target_mean += data.target(i);
  target_mean /= static_cast<double>(n);

  // Normal equations A w = b with A = X'X + lambda I on standardized X.
  std::vector<double> a(f * f, 0.0);
  std::vector<double> b(f, 0.0);
  std::vector<double> x(f);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < f; ++j) {
      x[j] = (data.feature(i, j) - model.means_[j]) / model.scales_[j];
    }
    const double y = data.target(i) - target_mean;
    for (size_t j = 0; j < f; ++j) {
      b[j] += x[j] * y;
      for (size_t k = j; k < f; ++k) a[j * f + k] += x[j] * x[k];
    }
  }
  for (size_t j = 0; j < f; ++j) {
    for (size_t k = 0; k < j; ++k) a[j * f + k] = a[k * f + j];
    a[j * f + j] += ridge_lambda * static_cast<double>(n);
  }

  // Gaussian elimination with partial pivoting.
  std::vector<double> w = b;
  for (size_t col = 0; col < f; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < f; ++r) {
      if (std::abs(a[r * f + col]) > std::abs(a[pivot * f + col])) pivot = r;
    }
    if (std::abs(a[pivot * f + col]) < 1e-12) continue;
    if (pivot != col) {
      for (size_t c = 0; c < f; ++c) std::swap(a[col * f + c], a[pivot * f + c]);
      std::swap(w[col], w[pivot]);
    }
    const double diag = a[col * f + col];
    for (size_t r = col + 1; r < f; ++r) {
      const double factor = a[r * f + col] / diag;
      if (factor == 0.0) continue;
      for (size_t c = col; c < f; ++c) a[r * f + c] -= factor * a[col * f + c];
      w[r] -= factor * w[col];
    }
  }
  for (size_t col = f; col-- > 0;) {
    const double diag = a[col * f + col];
    if (std::abs(diag) < 1e-12) {
      w[col] = 0.0;
      continue;
    }
    double acc = w[col];
    for (size_t c = col + 1; c < f; ++c) acc -= a[col * f + c] * w[c];
    w[col] = acc / diag;
  }
  model.weights_ = std::move(w);
  model.bias_ = target_mean;
  return model;
}

double LinearModel::Predict(std::span<const double> features) const {
  RPE_CHECK_EQ(features.size(), weights_.size());
  double y = bias_;
  for (size_t j = 0; j < weights_.size(); ++j) {
    y += weights_[j] * (features[j] - means_[j]) / scales_[j];
  }
  return y;
}

double LinearModel::MeanSquaredError(const Dataset& data) const {
  if (data.num_examples() == 0) return 0.0;
  double mse = 0.0;
  for (size_t i = 0; i < data.num_examples(); ++i) {
    const double d = Predict(data.ExampleSpan(i)) - data.target(i);
    mse += d * d;
  }
  return mse / static_cast<double>(data.num_examples());
}

}  // namespace rpe
