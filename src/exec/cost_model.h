// The virtual-clock cost model. Each GetNext call charges an
// operator-specific CPU cost plus I/O costs per byte touched. The resulting
// virtual time plays the role of wall-clock time in the paper: "true
// progress" is elapsed virtual time over total virtual time.
//
// The constants are deliberately *not* uniform per GetNext call: the GetNext
// model of progress (paper §6.7) is a good but imperfect proxy for time, and
// the per-operator spread below reproduces that imperfection (oracle TGN
// error > 0).
#pragma once

#include "exec/op_type.h"

namespace rpe {

/// CPU cost charged for producing one row at an operator of the given type.
inline double CpuCostPerRow(OpType op) {
  switch (op) {
    case OpType::kTableScan: return 1.0;
    case OpType::kIndexScan: return 1.2;
    case OpType::kIndexSeek: return 1.4;
    case OpType::kFilter: return 0.3;
    case OpType::kNestedLoopJoin: return 0.8;
    case OpType::kHashJoin: return 1.6;
    case OpType::kMergeJoin: return 1.1;
    case OpType::kSort: return 0.9;
    case OpType::kBatchSort: return 1.0;
    case OpType::kHashAggregate: return 1.3;
    case OpType::kStreamAggregate: return 0.9;
    case OpType::kTop: return 0.2;
  }
  return 1.0;
}

/// Extra CPU charged per input row consumed by a blocking build phase
/// (sort insertion, hash-table insert, aggregation update).
inline double BuildCostPerRow(OpType op) {
  switch (op) {
    case OpType::kSort: return 1.8;
    case OpType::kBatchSort: return 1.2;
    case OpType::kHashJoin: return 1.5;   // build-side insert
    case OpType::kHashAggregate: return 1.1;
    default: return 0.0;
  }
}

/// One-time cost of an index seek (B-tree descent), charged per re-open.
inline constexpr double kSeekOpenCost = 6.0;

/// I/O cost per byte read / written.
inline constexpr double kReadCostPerByte = 0.02;
inline constexpr double kWriteCostPerByte = 0.035;

/// Rough a-priori virtual-time estimate for a plan node producing est_rows
/// rows of the given width (used only to pick the observation sampling
/// interval, not by any estimator).
inline double EstimateNodeTime(OpType op, double est_rows, double row_width) {
  double t = est_rows * (CpuCostPerRow(op) + BuildCostPerRow(op));
  if (IsLeaf(op)) t += est_rows * row_width * kReadCostPerByte;
  return t;
}

}  // namespace rpe
