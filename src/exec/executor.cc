#include "exec/executor.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/operators.h"
#include "exec/plan_resolver.h"

namespace rpe {

namespace {

/// Fill each pipeline's activity window from the observation stream: an
/// observation belongs to a pipeline if any of the pipeline's node counters
/// (K, R, W) advanced since the previous observation.
void ComputePipelineWindows(const std::vector<Observation>& obs,
                            std::vector<Pipeline>* pipelines) {
  for (auto& p : *pipelines) {
    p.first_obs = -1;
    p.last_obs = -1;
    auto activity = [&](size_t oi) {
      double total = 0.0;
      for (int nid : p.nodes) {
        const size_t i = static_cast<size_t>(nid);
        total += obs[oi].k[i] + obs[oi].bytes_read[i] +
                 obs[oi].bytes_written[i];
      }
      return total;
    };
    double prev = 0.0;
    for (size_t oi = 0; oi < obs.size(); ++oi) {
      const double cur = activity(oi);
      if (cur > prev) {
        if (p.first_obs < 0) p.first_obs = static_cast<int>(oi);
        p.last_obs = static_cast<int>(oi);
      }
      prev = cur;
    }
    if (p.first_obs >= 0) {
      // The window starts just before the first observed activity.
      p.start_time = p.first_obs > 0
                         ? obs[static_cast<size_t>(p.first_obs - 1)].vtime
                         : 0.0;
      p.end_time = obs[static_cast<size_t>(p.last_obs)].vtime;
    }
  }
}

}  // namespace

Result<QueryRunResult> ExecutePlan(const PhysicalPlan& plan,
                                   const Catalog& catalog,
                                   const ExecOptions& options) {
  ExecContext ctx(&plan, &catalog, options);
  auto root_op = Operator::Create(plan.root(), &ctx);

  root_op->Open();
  Row row;
  uint64_t rows_out = 0;
  while (root_op->Next(&row)) ++rows_out;
  root_op->Close();
  ctx.SampleNow();  // final observation at query end

  QueryRunResult result;
  result.plan = &plan;
  result.rows_out = rows_out;
  result.total_time = ctx.vtime();
  const auto& final_counters = ctx.all_counters();
  result.true_n.reserve(final_counters.size());
  for (const auto& c : final_counters) {
    result.true_n.push_back(c.k);
    result.final_bytes_read.push_back(c.bytes_read);
    result.final_bytes_written.push_back(c.bytes_written);
  }
  result.observations = ctx.TakeObservations();
  result.pipelines = DecomposePipelines(plan);
  ComputePipelineWindows(result.observations, &result.pipelines);
  if (options.on_run_complete) options.on_run_complete(result);
  return result;
}

Result<std::unique_ptr<PhysicalPlan>> FinalizePlan(
    std::unique_ptr<PlanNode> root, const Catalog& catalog) {
  RPE_RETURN_NOT_OK(ResolvePlanSchemas(root.get(), catalog));
  return std::make_unique<PhysicalPlan>(std::move(root));
}

}  // namespace rpe
