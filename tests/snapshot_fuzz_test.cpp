// Structure-aware .rpsn mutation harness: seeded mutations of a valid
// selector-stack snapshot — header-field flips, CRC-repaired payload and
// aux-offset tampering (so corruption gets past the checksum gate and
// reaches the deep parsers), random byte flips, truncation, extension —
// asserting that the heap decoder and the mmap loader each either succeed
// or return a Status, never crash (run under ASan/UBSan in CI). When the
// mutation did not forge the checksum — i.e. anything a storage fault
// could actually produce — the two loaders must additionally agree bit
// for bit whenever both succeed; CRC-forging mutations model a hostile
// writer, where only the no-UB guarantee applies (the redundant model and
// aux sections are bound to each other by the writer, not the reader —
// see docs/ROBUSTNESS.md). Every assertion prints the failing case seed;
// rerun one case with
//   RPE_FUZZ_SEED=<seed> RPE_FUZZ_CASES=1 ./rpe_tests --gtest_filter='SnapshotFuzz*'
// Case count scales with RPE_FUZZ_CASES (default 300 locally, 10000 in
// the CI fuzz job).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/crc32.h"
#include "serving/mmap_arena.h"
#include "serving/snapshot.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::RandomRecords;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(env, nullptr, 10));
}

std::string TempPath(const std::string& name) {
  return std::filesystem::temp_directory_path().string() + "/" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Bitwise equality for score vectors: "bit-identical" literally, so a
/// NaN produced by a tampered model payload (raw IEEE bits are data, not
/// UB) still compares equal to itself across loads.
bool BitEq(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Recompute the v2 header CRC + payload-size fields after a payload or
/// aux-offset edit, so the mutation survives the checksum gate and
/// exercises the parsers behind it (header layout in snapshot.h).
void RepairCrc(std::string* bytes) {
  if (bytes->size() < 32) return;
  const uint64_t payload_size = bytes->size() - 32;
  uint32_t aux_offset = 0;
  std::memcpy(&aux_offset, bytes->data() + 28, 4);
  uint32_t crc = Crc32(&aux_offset, sizeof aux_offset);
  crc = Crc32(bytes->data() + 32, payload_size, crc);
  std::memcpy(bytes->data() + 16, &payload_size, 8);
  std::memcpy(bytes->data() + 24, &crc, 4);
}

/// One seeded structural mutation of valid snapshot bytes. Half the
/// classes repair the CRC afterwards — blind corruption tests the
/// checksum gate, repaired corruption tests everything behind it.
struct Mutation {
  std::string bytes;
  /// True when the CRC was recomputed over the tampered content. Such a
  /// file can only come from a hostile or buggy *writer* (the checksum
  /// binds the model and aux sections to each other only as far as the
  /// writer is honest), so the cross-loader bit-identity invariant is out
  /// of scope for it — only the no-UB/clean-Status invariant holds. See
  /// docs/ROBUSTNESS.md for the threat model.
  bool crc_repaired = false;
};

Mutation Mutate(const std::string& valid, uint64_t seed) {
  uint64_t rng = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  std::string bytes = valid;
  bool repaired = false;
  const int kind = static_cast<int>(SplitMix64(&rng) % 8);
  switch (kind) {
    case 0: {  // random byte flips, CRC left stale
      const size_t flips = 1 + SplitMix64(&rng) % 8;
      for (size_t i = 0; i < flips; ++i) {
        bytes[SplitMix64(&rng) % bytes.size()] ^=
            static_cast<char>(1 + SplitMix64(&rng) % 255);
      }
      break;
    }
    case 1: {  // header field <- random value (magic/version/kind/...)
      const size_t field = 4 * (SplitMix64(&rng) % 8);  // offsets 0..28
      const uint32_t value = static_cast<uint32_t>(SplitMix64(&rng));
      std::memcpy(bytes.data() + field, &value, 4);
      break;
    }
    case 2: {  // aux offset <- random, CRC repaired: steers both loaders
      const uint32_t aux = static_cast<uint32_t>(
          SplitMix64(&rng) % (2 * bytes.size()));
      std::memcpy(bytes.data() + 28, &aux, 4);
      RepairCrc(&bytes);
      repaired = true;
      break;
    }
    case 3: {  // payload byte flips, CRC repaired: reaches deep parsers
      const size_t flips = 1 + SplitMix64(&rng) % 16;
      for (size_t i = 0; i < flips; ++i) {
        bytes[32 + SplitMix64(&rng) % (bytes.size() - 32)] ^=
            static_cast<char>(1 + SplitMix64(&rng) % 255);
      }
      RepairCrc(&bytes);
      repaired = true;
      break;
    }
    case 4: {  // length-prefix-style tamper: overwrite an aligned u32 in
               // the payload with a huge value, CRC repaired
      const size_t at = 32 + 4 * (SplitMix64(&rng) % ((bytes.size() - 32) / 4));
      const uint32_t huge = 0x40000000u + static_cast<uint32_t>(
                                              SplitMix64(&rng) % 0x1000);
      std::memcpy(bytes.data() + at, &huge, 4);
      RepairCrc(&bytes);
      repaired = true;
      break;
    }
    case 5:  // truncate anywhere (possibly into the header)
      bytes.resize(SplitMix64(&rng) % bytes.size());
      break;
    case 6: {  // extend with random garbage, sometimes CRC repaired
      const size_t extra = 1 + SplitMix64(&rng) % 256;
      for (size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<char>(SplitMix64(&rng)));
      }
      if (SplitMix64(&rng) % 2 == 0) {
        RepairCrc(&bytes);
        repaired = true;
      }
      break;
    }
    default: {  // swap two 8-byte slabs within the payload, CRC repaired
      if (bytes.size() > 32 + 16) {
        const size_t span = bytes.size() - 32 - 8;
        const size_t a = 32 + SplitMix64(&rng) % span;
        const size_t b = 32 + SplitMix64(&rng) % span;
        char tmp[8];
        std::memcpy(tmp, bytes.data() + a, 8);
        std::memcpy(bytes.data() + a, bytes.data() + b, 8);
        std::memcpy(bytes.data() + b, tmp, 8);
      }
      RepairCrc(&bytes);
      repaired = true;
      break;
    }
  }
  return {std::move(bytes), repaired};
}

class SnapshotFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    probes_ = new std::vector<PipelineRecord>(RandomRecords(6, 41));
    MartParams params;
    params.num_trees = 10;
    params.tree.max_leaves = 8;
    params.seed = 7;
    valid_ = new std::string(EncodeSelectorStack(SelectorStack::Train(
        RandomRecords(60, 51), PoolOriginalThree(), params)));
    path_ = new std::string(TempPath("rpe_snapshot_fuzz.rpsn"));
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete probes_;
    delete valid_;
    delete path_;
    probes_ = nullptr;
    valid_ = nullptr;
    path_ = nullptr;
  }

  /// The harness invariant for one mutated buffer: both loaders return
  /// ok-or-Status (a crash fails the sanitizer run). With an unforged
  /// CRC the loaders must also agree bit for bit when both succeed; with
  /// a forged CRC (hostile-writer model) the mmap loader must still be
  /// deterministic — two loads of the same bytes score identically.
  static void CheckOneCase(const Mutation& m, uint64_t seed) {
    const auto heap = DecodeSelectorStack(m.bytes);
    ASSERT_NO_FATAL_FAILURE(WriteBytes(*path_, m.bytes)) << "seed=" << seed;
    const auto mapped = LoadSelectorStackMmap(*path_);
    if (!mapped.ok()) return;
    if (!m.crc_repaired && heap.ok()) {
      for (const PipelineRecord& r : *probes_) {
        ASSERT_TRUE(BitEq(
            heap->static_selector.PredictErrors(r.features),
            mapped->stack->static_selector.PredictErrors(r.features)))
            << "loaders disagree, seed=" << seed;
        ASSERT_TRUE(BitEq(
            heap->dynamic_selector.PredictErrors(r.features),
            mapped->stack->dynamic_selector.PredictErrors(r.features)))
            << "loaders disagree, seed=" << seed;
      }
    }
    const auto again = LoadSelectorStackMmap(*path_);
    ASSERT_TRUE(again.ok()) << "mmap load not deterministic, seed=" << seed;
    for (const PipelineRecord& r : *probes_) {
      ASSERT_TRUE(BitEq(
          again->stack->static_selector.PredictErrors(r.features),
          mapped->stack->static_selector.PredictErrors(r.features)))
          << "mmap load not deterministic, seed=" << seed;
    }
  }

  static std::vector<PipelineRecord>* probes_;
  static std::string* valid_;   ///< encoded valid stack, mutation base
  static std::string* path_;    ///< scratch file for the mmap loader
};

std::vector<PipelineRecord>* SnapshotFuzzTest::probes_ = nullptr;
std::string* SnapshotFuzzTest::valid_ = nullptr;
std::string* SnapshotFuzzTest::path_ = nullptr;

TEST_F(SnapshotFuzzTest, UnmutatedBaselineLoadsThroughBothPaths) {
  // Guards the harness itself: if the base bytes ever stopped loading,
  // every mutated case would pass vacuously.
  ASSERT_TRUE(DecodeSelectorStack(*valid_).ok());
  WriteBytes(*path_, *valid_);
  auto mapped = LoadSelectorStackMmap(*path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->zero_copy);
  CheckOneCase({*valid_, false}, 0);
}

TEST_F(SnapshotFuzzTest, SeededMutationsNeverCrashEitherLoader) {
  const size_t cases = EnvCount("RPE_FUZZ_CASES", 300);
  const uint64_t base_seed = EnvCount("RPE_FUZZ_SEED", 1);
  for (size_t i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + i;
    const Mutation mutated = Mutate(*valid_, seed);
    ASSERT_NO_FATAL_FAILURE(CheckOneCase(mutated, seed))
        << "rerun: RPE_FUZZ_SEED=" << seed << " RPE_FUZZ_CASES=1";
  }
}

TEST_F(SnapshotFuzzTest, MutatedRecordBatchesNeverCrashTheDecoder) {
  // The record-batch payload shares the container but has its own parser;
  // give it the same treatment on a smaller budget.
  const size_t cases = EnvCount("RPE_FUZZ_CASES", 300) / 4 + 1;
  const uint64_t base_seed = EnvCount("RPE_FUZZ_SEED", 1) + 0x10000000ull;
  const std::string valid = EncodeRecordBatch(RandomRecords(20, 61));
  for (size_t i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + i;
    const Mutation mutated = Mutate(valid, seed);
    const auto decoded = DecodeRecordBatch(mutated.bytes);
    if (decoded.ok()) continue;  // surviving a benign mutation is fine
    EXPECT_FALSE(decoded.status().ToString().empty()) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace rpe
