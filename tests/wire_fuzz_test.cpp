// Structure-aware wire-protocol fuzz harness: seeded mutations of valid
// frame streams pushed through FrameDecoder and every typed decoder —
// hostile lengths, truncation, type/status/reserved garbage, spliced and
// duplicated frames, random chunk boundaries — asserting the codec
// either yields frames or returns Status, never UB (run under ASan/UBSan
// in CI, same job as the snapshot fuzz). Every assertion prints the
// failing case seed; rerun one case with
//   RPE_FUZZ_SEED=<seed> RPE_FUZZ_CASES=1 ./rpe_tests --gtest_filter='WireFuzz*'
// Case count scales with RPE_FUZZ_CASES (default 300 locally, 10000 in
// the CI fuzz job).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "progress/estimator.h"
#include "selection/features.h"
#include "serving/wire.h"

namespace rpe {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(env, nullptr, 10));
}

/// A decodable wire record: schema-arity features, estimator-table-arity
/// l1/l2, every double finite — the base the ingest mutations corrupt.
PipelineRecord FuzzRecord(uint64_t* rng) {
  PipelineRecord r;
  r.workload = "fuzz";
  r.query = "q" + std::to_string(SplitMix64(rng) % 9);
  r.pipeline_id = static_cast<int>(SplitMix64(rng) % 5);
  r.tag = (SplitMix64(rng) % 2 == 0) ? "even" : "odd";
  r.total_n = 1.0 + static_cast<double>(SplitMix64(rng) % 4096);
  r.features.resize(FeatureSchema::Get().num_features());
  for (double& f : r.features) {
    f = static_cast<double>(SplitMix64(rng) % 1000) / 1000.0;
  }
  r.l1.resize(static_cast<size_t>(kNumEstimatorKinds));
  r.l2.resize(static_cast<size_t>(kNumEstimatorKinds));
  for (size_t i = 0; i < r.l1.size(); ++i) {
    r.l1[i] = static_cast<double>(SplitMix64(rng) % 300) / 1000.0;
    r.l2[i] = static_cast<double>(SplitMix64(rng) % 300) / 1000.0;
  }
  return r;
}

/// A valid multi-frame stream covering every message type — the mutation
/// base, so corruptions land on real structure rather than noise.
std::string ValidStream(uint64_t* rng) {
  std::string out;
  out += EncodeOpenRequest({static_cast<uint32_t>(SplitMix64(rng))});
  OpenResponse opened;
  opened.session_id = SplitMix64(rng);
  opened.run_index = static_cast<uint32_t>(SplitMix64(rng) % 64);
  opened.num_observations = static_cast<uint32_t>(SplitMix64(rng) % 4096);
  out += EncodeOpenResponse(opened);
  AdvanceRequest advance;
  advance.session_id = SplitMix64(rng);
  advance.max_steps =
      1 + static_cast<uint32_t>(SplitMix64(rng) % kMaxAdvanceSteps);
  out += EncodeAdvanceRequest(advance);
  AdvanceResponse stepped;
  stepped.progress =
      static_cast<double>(SplitMix64(rng)) / 1e18;
  stepped.steps = static_cast<uint32_t>(SplitMix64(rng));
  stepped.done = static_cast<uint8_t>(SplitMix64(rng) % 2);
  out += EncodeAdvanceResponse(stepped);
  out += EncodeProgressRequest({SplitMix64(rng)});
  ProgressResponse progress;
  progress.progress = static_cast<double>(SplitMix64(rng)) / 1e18;
  progress.done = static_cast<uint8_t>(SplitMix64(rng) % 2);
  out += EncodeProgressResponse(progress);
  out += EncodeCloseRequest({SplitMix64(rng)});
  out += EncodeCloseResponse();
  out += EncodeStatsRequest();
  WireStats stats;
  stats.sessions_opened = SplitMix64(rng);
  stats.bytes_sent = SplitMix64(rng);
  stats.records_ingest_shed = SplitMix64(rng);
  stats.ingest_pushed = SplitMix64(rng);
  stats.p50_replay_ms = static_cast<double>(SplitMix64(rng)) / 1e12;
  out += EncodeStatsResponse(stats);
  IngestRecordRequest single;
  single.record = FuzzRecord(rng);
  out += EncodeIngestRecordRequest(single);
  IngestBatchRequest batch;
  const size_t batch_records = 1 + SplitMix64(rng) % 3;
  for (size_t i = 0; i < batch_records; ++i) {
    batch.records.push_back(FuzzRecord(rng));
  }
  out += EncodeIngestBatchRequest(batch);
  IngestResponse ingested;
  ingested.accepted = static_cast<uint32_t>(SplitMix64(rng));
  ingested.dropped = static_cast<uint32_t>(SplitMix64(rng));
  out += EncodeIngestResponse(
      SplitMix64(rng) % 2 == 0 ? MsgType::kIngestRecord
                               : MsgType::kIngestBatch,
      ingested);
  const Status error = Status::NotFound("fuzz error payload");
  out += EncodeErrorFrame(
      static_cast<MsgType>(1 + SplitMix64(rng) % kMaxMsgType), error);
  return out;
}

/// One seeded structural mutation of a valid frame stream.
std::string Mutate(std::string bytes, uint64_t* rng) {
  switch (SplitMix64(rng) % 8) {
    case 0: {  // random byte flips anywhere (headers included)
      const size_t flips = 1 + SplitMix64(rng) % 16;
      for (size_t i = 0; i < flips; ++i) {
        bytes[SplitMix64(rng) % bytes.size()] ^=
            static_cast<char>(1 + SplitMix64(rng) % 255);
      }
      break;
    }
    case 1: {  // length-prefix tamper: rewrite a u32 at a frame-ish offset
      if (bytes.size() > 4) {  // stacked truncation can leave < 5 bytes
        const size_t at = SplitMix64(rng) % (bytes.size() - 4);
        const uint32_t lie = static_cast<uint32_t>(SplitMix64(rng));
        std::memcpy(bytes.data() + at, &lie, 4);
      }
      break;
    }
    case 2:  // truncate anywhere (mid-header, mid-payload)
      bytes.resize(SplitMix64(rng) % bytes.size());
      break;
    case 3: {  // extend with garbage
      const size_t extra = 1 + SplitMix64(rng) % 512;
      for (size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<char>(SplitMix64(rng)));
      }
      break;
    }
    case 4: {  // splice: drop a random middle section (frame desync)
      const size_t from = SplitMix64(rng) % bytes.size();
      const size_t len = SplitMix64(rng) % (bytes.size() - from);
      bytes.erase(from, len);
      break;
    }
    case 5: {  // duplicate a random slice into a random position
      const size_t from = SplitMix64(rng) % bytes.size();
      const size_t len =
          1 + SplitMix64(rng) % (bytes.size() - from);
      const std::string slice = bytes.substr(from, len);
      bytes.insert(SplitMix64(rng) % bytes.size(), slice);
      break;
    }
    case 6: {  // type/status/reserved garbage in the first header
      if (bytes.size() >= kFrameHeaderBytes) {
        bytes[4] = static_cast<char>(SplitMix64(rng));
        bytes[5] = static_cast<char>(SplitMix64(rng));
        bytes[6] = static_cast<char>(SplitMix64(rng));
        bytes[7] = static_cast<char>(SplitMix64(rng));
      }
      break;
    }
    default:  // pure noise replacing the whole stream
      for (char& b : bytes) b = static_cast<char>(SplitMix64(rng));
      break;
  }
  return bytes;
}

/// Payload-interior mutation of a single ingest frame. Unlike Mutate(),
/// the frame header's length is re-stamped afterwards so the framing
/// layer accepts the frame and the lie lands squarely on the record
/// decoders: u16 string/vector length lies, truncated records, spliced
/// record boundaries, non-finite doubles.
std::string MutateIngestPayload(std::string frame_bytes, uint64_t* rng) {
  const size_t payload_size = frame_bytes.size() - kFrameHeaderBytes;
  switch (SplitMix64(rng) % 4) {
    case 0: {  // u16 length lie anywhere in the payload
      const size_t at =
          kFrameHeaderBytes + SplitMix64(rng) % (payload_size - 1);
      const uint16_t lie = static_cast<uint16_t>(SplitMix64(rng));
      std::memcpy(frame_bytes.data() + at, &lie, 2);
      break;
    }
    case 1:  // truncate the record mid-field
      frame_bytes.resize(kFrameHeaderBytes + SplitMix64(rng) % payload_size);
      break;
    case 2: {  // splice out a middle section (record-boundary desync)
      const size_t from = kFrameHeaderBytes + SplitMix64(rng) % payload_size;
      const size_t len = SplitMix64(rng) % (frame_bytes.size() - from);
      frame_bytes.erase(from, len);
      break;
    }
    default: {  // plant a non-finite double on an 8-byte window
      if (payload_size >= 8) {
        const size_t at =
            kFrameHeaderBytes + SplitMix64(rng) % (payload_size - 7);
        const double bad = SplitMix64(rng) % 2 == 0
                               ? std::numeric_limits<double>::quiet_NaN()
                               : std::numeric_limits<double>::infinity();
        std::memcpy(frame_bytes.data() + at, &bad, 8);
      }
      break;
    }
  }
  // Re-stamp the header length so the frame still reassembles and the
  // corruption reaches DecodeIngest*Request, not the framing layer.
  const uint32_t new_len =
      static_cast<uint32_t>(frame_bytes.size() - kFrameHeaderBytes);
  std::memcpy(frame_bytes.data(), &new_len, 4);
  return frame_bytes;
}

/// Push one mutated stream through the decoder in random chunk sizes,
/// running the matching typed decoder on every complete frame. The
/// invariant: frames or Status, never a crash; after a header-level
/// rejection the decoder stays rejecting (no resurrection mid-garbage).
void DrainOneCase(const std::string& stream, uint64_t seed) {
  uint64_t rng = seed ^ 0xA5A5A5A5A5A5A5A5ull;
  FrameDecoder decoder;
  size_t fed = 0;
  bool poisoned = false;
  size_t frames = 0;
  while (fed < stream.size()) {
    const size_t chunk =
        1 + SplitMix64(&rng) % std::min<size_t>(stream.size() - fed, 4096);
    decoder.Feed(stream.data() + fed, chunk);
    fed += chunk;
    while (true) {
      WireFrame frame;
      const auto next = decoder.Next(&frame);
      if (!next.ok()) {
        ASSERT_FALSE(next.status().ToString().empty()) << "seed=" << seed;
        poisoned = true;
        break;
      }
      if (!*next) break;
      ASSERT_FALSE(poisoned)
          << "decoder yielded a frame after rejecting the stream, seed="
          << seed;
      ++frames;
      // Typed decoders on attacker-shaped payloads: ok or Status only.
      switch (frame.type) {
        case MsgType::kOpen:
          (void)DecodeOpenRequest(frame.payload);
          (void)DecodeOpenResponse(frame.payload);
          break;
        case MsgType::kAdvance:
          (void)DecodeAdvanceRequest(frame.payload);
          (void)DecodeAdvanceResponse(frame.payload);
          break;
        case MsgType::kProgress:
          (void)DecodeProgressRequest(frame.payload);
          (void)DecodeProgressResponse(frame.payload);
          break;
        case MsgType::kClose:
          (void)DecodeCloseRequest(frame.payload);
          break;
        case MsgType::kStats:
          (void)DecodeStatsResponse(frame.payload);
          break;
        case MsgType::kIngestRecord:
          (void)DecodeIngestRecordRequest(frame.payload);
          (void)DecodeIngestResponse(frame.payload);
          break;
        case MsgType::kIngestBatch:
          (void)DecodeIngestBatchRequest(frame.payload);
          (void)DecodeIngestResponse(frame.payload);
          break;
      }
    }
    if (poisoned) break;
  }
  // Replaying identical bytes in one shot must reproduce the verdict —
  // chunking can never change what the decoder accepts.
  FrameDecoder replay;
  replay.Feed(stream);
  size_t replay_frames = 0;
  while (true) {
    WireFrame frame;
    const auto next = replay.Next(&frame);
    if (!next.ok()) {
      ASSERT_TRUE(poisoned)
          << "one-shot decode rejected what chunked decode accepted, seed="
          << seed;
      return;
    }
    if (!*next) break;
    ++replay_frames;
  }
  ASSERT_FALSE(poisoned)
      << "one-shot decode accepted what chunked decode rejected, seed="
      << seed;
  ASSERT_EQ(replay_frames, frames) << "seed=" << seed;
}

TEST(WireFuzzTest, UnmutatedStreamYieldsFourteenFrames) {
  // Guards the harness: if the base stream stopped decoding, every
  // mutated case would pass vacuously.
  uint64_t rng = 99;
  FrameDecoder decoder;
  decoder.Feed(ValidStream(&rng));
  size_t frames = 0;
  while (true) {
    WireFrame frame;
    auto next = decoder.Next(&frame);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!*next) break;
    ++frames;
  }
  EXPECT_EQ(frames, 14u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireFuzzTest, SeededMutationsNeverCrashTheCodec) {
  const size_t cases = EnvCount("RPE_FUZZ_CASES", 300);
  const uint64_t base_seed = EnvCount("RPE_FUZZ_SEED", 1);
  for (size_t i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + i;
    uint64_t rng = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
    std::string stream = ValidStream(&rng);
    // Stack 1..3 mutations so desyncs compound.
    const size_t rounds = 1 + SplitMix64(&rng) % 3;
    for (size_t m = 0; m < rounds && !stream.empty(); ++m) {
      stream = Mutate(std::move(stream), &rng);
    }
    if (stream.empty()) continue;
    ASSERT_NO_FATAL_FAILURE(DrainOneCase(stream, seed))
        << "rerun: RPE_FUZZ_SEED=" << seed << " RPE_FUZZ_CASES=1";
  }
}

TEST(WireFuzzTest, IngestPayloadMutationsNeverCrashTheRecordDecoders) {
  // Satellite of the ingest path: the frame stays structurally valid
  // (header length re-stamped) so every corruption exercises the record
  // decoders' bounds checks. DrainOneCase still enforces the
  // chunked-vs-one-shot verdict equivalence on top.
  const size_t cases = EnvCount("RPE_FUZZ_CASES", 300);
  const uint64_t base_seed = EnvCount("RPE_FUZZ_SEED", 1) + 0x40000000ull;
  for (size_t i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + i;
    uint64_t rng = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
    std::string stream;
    if (SplitMix64(&rng) % 2 == 0) {
      IngestRecordRequest single;
      single.record = FuzzRecord(&rng);
      stream = EncodeIngestRecordRequest(single);
    } else {
      IngestBatchRequest batch;
      const size_t batch_records = 1 + SplitMix64(&rng) % 4;
      for (size_t r = 0; r < batch_records; ++r) {
        batch.records.push_back(FuzzRecord(&rng));
      }
      stream = EncodeIngestBatchRequest(batch);
    }
    const size_t rounds = 1 + SplitMix64(&rng) % 2;
    for (size_t m = 0; m < rounds; ++m) {
      if (stream.size() <= kFrameHeaderBytes + 1) break;
      stream = MutateIngestPayload(std::move(stream), &rng);
    }
    ASSERT_NO_FATAL_FAILURE(DrainOneCase(stream, seed))
        << "rerun: RPE_FUZZ_SEED=" << seed << " RPE_FUZZ_CASES=1";
  }
}

TEST(WireFuzzTest, PureGarbageStreamsAreAlwaysRejectedOrIncomplete) {
  const size_t cases = EnvCount("RPE_FUZZ_CASES", 300) / 4 + 1;
  const uint64_t base_seed = EnvCount("RPE_FUZZ_SEED", 1) + 0x20000000ull;
  for (size_t i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + i;
    uint64_t rng = seed;
    std::string garbage(8 + SplitMix64(&rng) % 512, '\0');
    for (char& b : garbage) b = static_cast<char>(SplitMix64(&rng));
    ASSERT_NO_FATAL_FAILURE(DrainOneCase(garbage, seed))
        << "rerun: RPE_FUZZ_SEED=" << seed << " RPE_FUZZ_CASES=1";
  }
}

}  // namespace
}  // namespace rpe
