// Binary snapshot layer for the serving stack: a versioned, checksummed
// container for (a) trained selector stacks — the static + dynamic
// EstimatorSelector pair a ProgressMonitor runs on — and (b) batches of
// PipelineRecord training data. Snapshots replace the text/CSV persistence
// path on the hot load path: doubles are stored as raw IEEE-754 bits (so
// round-trips are bit-exact by construction, not by printf precision), all
// numeric arrays are contiguous little-endian slabs (mmap-friendly: a
// future reader can point straight into the payload), and the payload is
// guarded by a CRC-32 so corruption or truncation is rejected before any
// field is decoded.
//
// Container layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic  "RPSN" (0x4E535052)
//   4       4     format version (1 legacy, 2 current; see below)
//   8       4     payload kind (SnapshotKind)
//   12      4     reserved (0)
//   16      8     payload size in bytes
//   24      4     CRC-32 — v1: over the payload bytes; v2: over the
//                 4-byte aux-offset field, then the payload (the offset
//                 steers both loaders, so header corruption must be
//                 caught as corruption)
//   28      4     aux-section offset into the payload (0 = none; v1 files
//                 always 0) — header is 32 bytes, payload 8-aligned
//   32      ...   payload
//
// Selector-stack payload: feature-schema metadata (count, static count,
// names — validated against the running binary's FeatureSchema at load),
// then the static and dynamic selectors back to back; each selector is its
// pool, feature mode, and per-candidate MART models with trees stored as
// structure-of-arrays node slabs. On the ordinary heap load path the flat
// scoring buffers (FlatEnsembleSet) are recompiled — compilation is
// deterministic from the models, so the rebuilt stack scores
// bit-identically to the one saved.
//
// Version 2 appends an aux section ("RPFL") at the header's aux offset:
// the compiled FlatEnsembleSet tables of both selectors with every slab
// padded to 8-byte alignment relative to the payload start (the payload
// itself starts at file offset 32, so payload alignment == file
// alignment). This is what the zero-copy loader consumes: MmapArena (see
// serving/mmap_arena.h) maps the file and rebuilds the stack with slab
// views pointing straight into the mapping — no tree decode, no slab
// memcpy. The heap decoder ignores the section entirely (it recompiles
// from the models), so the two loaders can never disagree about the same
// file's scores: both representations come from the same deterministic
// compiler. QuickScorer leaf-value slabs are written with a 64-slot zero
// guard tail so a hostile mask table cannot index past the slab (see
// FlatEnsembleSet::FromParts).
//
// Record-batch payload: feature/estimator arity header (validated against
// the schema at load) followed by the records.
//
// Threading contract: all functions here are stateless and thread-safe;
// encode/decode touch only their arguments. A decoded SelectorStack is
// immutable and safe to share across threads (the serving layer wraps it
// in shared_ptr<const SelectorStack>).
//
// Error behavior: snapshots are untrusted input. Decode/Load functions
// never abort on malformed bytes — bad magic, version or kind skew, CRC
// mismatch, truncation, schema mismatch, and hostile model payloads all
// return a descriptive Status before any decoded field is used.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "selection/record.h"
#include "selection/selector.h"

namespace rpe {

inline constexpr uint32_t kSnapshotMagic = 0x4E535052;  // "RPSN"
/// Current write version. Version 1 (no aux section) is still readable;
/// loaders fall back to the model-decode path for it.
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint32_t kSnapshotVersionLegacy = 1;
/// Magic opening the compiled-flat aux section of a v2 selector stack.
inline constexpr uint32_t kFlatSectionMagic = 0x4C465052;  // "RPFL"
/// Zero doubles appended after each QuickScorer leaf-value slab so a
/// fully-cleared (hostile) leaf bitvector indexes the guard, not past the
/// slab: countr_zero(0) == 64.
inline constexpr size_t kQsLeafGuard = 64;

enum class SnapshotKind : uint32_t {
  kSelectorStack = 1,
  kRecordBatch = 2,
};

/// Decoded container header of a snapshot buffer (CRC already verified).
struct SnapshotFrame {
  SnapshotKind kind = SnapshotKind::kSelectorStack;
  uint32_t version = 0;
  /// Payload offset of the aux section (0 = absent / legacy).
  uint32_t aux_offset = 0;
  std::string_view payload;  ///< views into the caller's buffer
};

/// Verify magic/version/size/CRC and return the framed payload. Accepts
/// versions 1 and 2; anything else is InvalidArgument.
Result<SnapshotFrame> UnframeSnapshot(std::string_view bytes);

/// \brief The trained model pair the serving layer runs on: static-feature
/// selector for initial choices, dynamic-feature selector for revisions.
struct SelectorStack {
  EstimatorSelector static_selector;
  EstimatorSelector dynamic_selector;

  /// Train both selectors of the stack on one record set (the static one
  /// on the static feature prefix, the dynamic one on the full vector).
  static SelectorStack Train(
      const std::vector<PipelineRecord>& records, std::vector<size_t> pool,
      const MartParams& params = EstimatorSelector::DefaultParams());
};

/// In-memory encode/decode (the file functions below wrap these).
std::string EncodeSelectorStack(const SelectorStack& stack);
Result<SelectorStack> DecodeSelectorStack(std::string_view bytes);
std::string EncodeRecordBatch(const std::vector<PipelineRecord>& records);
Result<std::vector<PipelineRecord>> DecodeRecordBatch(std::string_view bytes);

/// Kind of a snapshot buffer/file without decoding the payload (CRC is
/// still verified).
Result<SnapshotKind> PeekSnapshotKind(std::string_view bytes);
Result<SnapshotKind> PeekSnapshotFileKind(const std::string& path);

/// Raw snapshot bytes from disk, so a caller can Peek and Decode the same
/// buffer without reading (and CRC-checking) the file twice.
Result<std::string> ReadSnapshotFile(const std::string& path);

Status SaveSelectorStack(const SelectorStack& stack, const std::string& path);
Result<SelectorStack> LoadSelectorStack(const std::string& path);
Status SaveRecordBatch(const std::vector<PipelineRecord>& records,
                       const std::string& path);
Result<std::vector<PipelineRecord>> LoadRecordBatch(const std::string& path);

namespace snapshot_internal {

/// Validate the feature-schema block that opens a selector-stack payload
/// against this binary's FeatureSchema (the zero-copy loader runs this
/// before trusting the aux section; the heap decoder does it inline).
Status CheckSchemaPrefix(std::string_view payload);

/// Encode with a version-1 header and no aux section — the layout pre-v2
/// writers shipped. Kept so the legacy fallback path of the loaders stays
/// covered (tests) and old readers can be fed by downgrade tooling.
std::string EncodeSelectorStackLegacyV1(const SelectorStack& stack);

}  // namespace snapshot_internal

}  // namespace rpe
