// Status / Result error-handling primitives, modelled on the Arrow/RocksDB
// convention: fallible functions return Status (or Result<T>) instead of
// throwing; callers propagate with RPE_RETURN_NOT_OK.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace rpe {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kIOError,
  /// Transient overload: the operation was refused by admission control
  /// (not failed) and is expected to succeed after backoff. Appended last
  /// — the numeric values travel as the wire status byte (serving/wire.h).
  kUnavailable,
};

/// \brief Outcome of a fallible operation: a code plus a human-readable
/// message. `Status::OK()` is the success value.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : value_(std::move(status)) {}   // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(value_); }
  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  T& ValueOrDie() & { return std::get<T>(value_); }
  const T& ValueOrDie() const& { return std::get<T>(value_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(value_)); }

  T& operator*() & { return ValueOrDie(); }
  const T& operator*() const& { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<T, Status> value_;
};

#define RPE_RETURN_NOT_OK(expr)                   \
  do {                                            \
    ::rpe::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define RPE_CONCAT_IMPL(a, b) a##b
#define RPE_CONCAT(a, b) RPE_CONCAT_IMPL(a, b)

#define RPE_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto&& var = (expr);                            \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).ValueOrDie()

#define RPE_ASSIGN_OR_RETURN(lhs, expr) \
  RPE_ASSIGN_OR_RETURN_IMPL(RPE_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace rpe
