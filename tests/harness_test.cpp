// Integration tests: full pipeline from workload construction through
// planning, execution, featurization, selector training and evaluation.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "harness/experiment.h"
#include "harness/runner.h"

namespace rpe {
namespace {

WorkloadConfig SmallTpch(uint64_t seed = 77) {
  WorkloadConfig config;
  config.kind = WorkloadKind::kTpch;
  config.name = "tpch-small";
  config.scale = 2.0;
  config.zipf = 1.0;
  config.tuning = TuningLevel::kPartiallyTuned;
  config.num_queries = 60;
  config.seed = seed;
  return config;
}

class HarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto workload = BuildWorkload(SmallTpch());
    ASSERT_TRUE(workload.ok()) << workload.status().ToString();
    workload_ = new Workload(std::move(workload).ValueOrDie());
    auto records = RunWorkload(*workload_);
    ASSERT_TRUE(records.ok()) << records.status().ToString();
    records_ = new std::vector<PipelineRecord>(std::move(records).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete records_;
    delete workload_;
    records_ = nullptr;
    workload_ = nullptr;
  }

  static Workload* workload_;
  static std::vector<PipelineRecord>* records_;
};

Workload* HarnessTest::workload_ = nullptr;
std::vector<PipelineRecord>* HarnessTest::records_ = nullptr;

TEST_F(HarnessTest, WorkloadBuilds) {
  EXPECT_EQ(workload_->queries.size(), 60u);
  EXPECT_TRUE(workload_->catalog->HasTable("lineitem"));
  EXPECT_TRUE(workload_->catalog->HasTable("orders"));
  EXPECT_GT(workload_->catalog->num_indexes(), 6u);
}

TEST_F(HarnessTest, ProducesRecords) {
  ASSERT_GT(records_->size(), 40u);
  const size_t nf = FeatureSchema::Get().num_features();
  for (const auto& r : *records_) {
    EXPECT_EQ(r.features.size(), nf);
    EXPECT_EQ(r.l1.size(), static_cast<size_t>(kNumEstimatorKinds));
    for (double e : r.l1) {
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, 1.0);
    }
  }
}

TEST_F(HarnessTest, ErrorsAreNotDegenerate) {
  // At least some pipelines must have nontrivial errors, and different
  // estimators must win on different pipelines.
  size_t nontrivial = 0;
  std::set<size_t> winners;
  for (const auto& r : *records_) {
    if (r.BestL1() > 0.01) ++nontrivial;
    winners.insert(r.BestEstimator());
  }
  EXPECT_GT(nontrivial, records_->size() / 20);
  EXPECT_GE(winners.size(), 3u) << "a single estimator dominates everywhere";
}

TEST_F(HarnessTest, RunQuerySingle) {
  auto run = RunQuery(*workload_, workload_->queries[0]);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->result.observations.size(), 0u);
  EXPECT_GT(run->result.total_time, 0.0);
}

TEST_F(HarnessTest, CsvRoundTrip) {
  const std::string csv = RecordsToCsv(*records_);
  auto loaded = RecordsFromCsv(csv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), records_->size());
  for (size_t i = 0; i < records_->size(); ++i) {
    EXPECT_EQ((*loaded)[i].workload, (*records_)[i].workload);
    EXPECT_EQ((*loaded)[i].features.size(), (*records_)[i].features.size());
    EXPECT_NEAR((*loaded)[i].l1[0], (*records_)[i].l1[0], 1e-9);
  }
}

TEST_F(HarnessTest, SelectorTrainsAndBeatsWorstEstimator) {
  // Split odd/even to get disjoint train/test.
  std::vector<PipelineRecord> train, test;
  for (size_t i = 0; i < records_->size(); ++i) {
    ((i % 2 == 0) ? train : test).push_back((*records_)[i]);
  }
  MartParams fast;
  fast.num_trees = 60;
  fast.tree.max_leaves = 16;
  auto eval = TrainAndEvaluate(train, test, PoolOriginalThree(),
                               /*use_dynamic=*/false, fast);
  ASSERT_GT(eval.metrics.count, 0u);

  // Selection should not be worse than the worst single estimator, and
  // should typically approach the best.
  double worst = 0.0, best = 1.0;
  for (size_t est : PoolOriginalThree()) {
    const auto m = EvaluateChoices(test, FixedChoice(test, est));
    worst = std::max(worst, m.avg_l1);
    best = std::min(best, m.avg_l1);
  }
  EXPECT_LE(eval.metrics.avg_l1, worst + 1e-9);
}

TEST_F(HarnessTest, OracleIsLowerBound) {
  const auto oracle = EvaluateChoices(*records_, OracleChoice(*records_));
  for (size_t est = 0; est < static_cast<size_t>(kNumSelectableEstimators);
       ++est) {
    const auto m = EvaluateChoices(*records_, FixedChoice(*records_, est));
    EXPECT_GE(m.avg_l1, oracle.avg_l1 - 1e-12);
  }
  EXPECT_DOUBLE_EQ(oracle.pct_optimal, 1.0);
}

TEST_F(HarnessTest, SelectivityBucketsPartition) {
  const auto buckets = SelectivityBuckets(*records_, 6);
  ASSERT_EQ(buckets.size(), records_->size());
  size_t assigned = 0;
  for (int b : buckets) {
    EXPECT_GE(b, -1);
    EXPECT_LE(b, 2);
    if (b >= 0) ++assigned;
  }
  EXPECT_GT(assigned, 0u);
}

TEST_F(HarnessTest, CachedRecordsRoundTrip) {
  setenv("RPE_CACHE_DIR", "harness_test_cache", 1);
  WorkloadConfig config = SmallTpch(123);
  config.num_queries = 10;
  auto first = CachedRecords("harness_test_tiny", config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = CachedRecords("harness_test_tiny", config);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->size(), second->size());
  unsetenv("RPE_CACHE_DIR");
  std::filesystem::remove_all("harness_test_cache");
}

}  // namespace
}  // namespace rpe
