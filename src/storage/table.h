// In-memory row-store table.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace rpe {

/// \brief A named, schema-typed collection of rows. Rows are immutable once
/// appended; the executor reads them through scan/seek operators only.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  uint64_t num_rows() const { return rows_.size(); }
  const Row& row(RowId id) const { return rows_[id]; }
  const std::vector<Row>& rows() const { return rows_; }

  Status Append(Row row);
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Min/max of a column (0 for empty tables). Used by histogram builds.
  int64_t ColumnMin(size_t col) const;
  int64_t ColumnMax(size_t col) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace rpe
