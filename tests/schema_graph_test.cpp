// Tests for the schema-graph random query generator: connectivity,
// fan-out capping, hint mix and determinism.
#include <gtest/gtest.h>

#include <map>

#include "workload/schema_graph.h"

namespace rpe {
namespace {

/// A star schema: one fact (t0, 100k rows) with two dims (t1: 100,
/// t2: 1000) and a second fact (t3, 50k) sharing dim t1 — the shape where
/// unguarded walks explode (fact-dim-fact).
SchemaGraph StarGraph() {
  SchemaGraph g;
  g.tables = {"fact_a", "dim_small", "dim_big", "fact_b"};
  g.table_rows = {100000, 100, 1000, 50000};
  auto edge = [&](size_t a, const char* ca, size_t b, const char* cb) {
    JoinPath e;
    e.table_a = a;
    e.col_a = ca;
    e.table_b = b;
    e.col_b = cb;
    e.fanout_ab = std::max(1.0, g.table_rows[b] / g.table_rows[a]);
    e.fanout_ba = std::max(1.0, g.table_rows[a] / g.table_rows[b]);
    g.edges.push_back(e);
  };
  edge(1, "k", 0, "fk_small");
  edge(2, "k", 0, "fk_big");
  edge(1, "k", 3, "fk_small");
  g.filters = {{0, "val", 0, 100, 0.5}, {1, "attr", 0, 10, 0.5}};
  g.group_cols = {{1, "attr"}};
  return g;
}

TEST(SchemaGraphTest, ChainsAreConnectedLeftDeep) {
  SchemaGraph g = StarGraph();
  QueryGenParams params;
  params.min_joins = 1;
  params.max_joins = 3;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    auto spec = GenerateQuery(g, params, "q", &rng);
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec->joins.size(), spec->tables.size() - 1);
    for (size_t j = 0; j < spec->joins.size(); ++j) {
      EXPECT_LE(spec->joins[j].left_idx, j);
    }
  }
}

TEST(SchemaGraphTest, FanoutCapPreventsFactDimFactExplosion) {
  SchemaGraph g = StarGraph();
  QueryGenParams params;
  params.min_joins = 3;
  params.max_joins = 3;
  // Cap below |fact_a| x fanout(dim->fact_b): chains containing both facts
  // through the shared dim must be rejected.
  params.max_est_output = 150000.0;
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    auto spec = GenerateQuery(g, params, "q", &rng);
    ASSERT_TRUE(spec.ok());
    const bool has_a =
        std::find(spec->tables.begin(), spec->tables.end(), "fact_a") !=
        spec->tables.end();
    const bool has_b =
        std::find(spec->tables.begin(), spec->tables.end(), "fact_b") !=
        spec->tables.end();
    EXPECT_FALSE(has_a && has_b)
        << "chain joined both facts despite the output cap";
  }
}

TEST(SchemaGraphTest, HintMixRoughlyMatchesProbabilities) {
  SchemaGraph g = StarGraph();
  QueryGenParams params;
  params.min_joins = 2;
  params.max_joins = 3;
  params.hash_hint_prob = 0.2;
  params.merge_hint_prob = 0.1;
  params.nlj_hint_prob = 0.1;
  Rng rng(3);
  std::map<JoinHint, int> counts;
  int total = 0;
  for (int i = 0; i < 500; ++i) {
    auto spec = GenerateQuery(g, params, "q", &rng);
    ASSERT_TRUE(spec.ok());
    for (const auto& j : spec->joins) {
      counts[j.hint]++;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(counts[JoinHint::kHash]) / total, 0.2,
              0.05);
  EXPECT_NEAR(static_cast<double>(counts[JoinHint::kMerge]) / total, 0.1,
              0.04);
  EXPECT_NEAR(static_cast<double>(counts[JoinHint::kAuto]) / total, 0.6,
              0.06);
}

TEST(SchemaGraphTest, FiltersReferenceUsedTables) {
  SchemaGraph g = StarGraph();
  QueryGenParams params;
  params.filter_prob = 1.0;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    auto spec = GenerateQuery(g, params, "q", &rng);
    ASSERT_TRUE(spec.ok());
    for (const auto& f : spec->filters) {
      ASSERT_LT(f.table_idx, spec->tables.size());
      // The filter's column must be filterable for that schema table.
      bool found = false;
      for (const auto& fc : g.filters) {
        if (g.tables[fc.table] == spec->tables[f.table_idx] &&
            fc.column == f.column) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << f.column;
    }
  }
}

TEST(SchemaGraphTest, RangeFiltersWithinDomain) {
  SchemaGraph g = StarGraph();
  QueryGenParams params;
  params.filter_prob = 1.0;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    auto spec = GenerateQuery(g, params, "q", &rng);
    ASSERT_TRUE(spec.ok());
    for (const auto& f : spec->filters) {
      if (f.kind == Predicate::Kind::kBetween) {
        EXPECT_LE(f.v1, f.v2);
      }
    }
  }
}

TEST(SchemaGraphTest, DeterministicPerSeed) {
  SchemaGraph g = StarGraph();
  QueryGenParams params;
  Rng rng1(6), rng2(6);
  auto a = GenerateQueries(g, params, "q", 50, &rng1);
  auto b = GenerateQueries(g, params, "q", 50, &rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].tables, (*b)[i].tables);
    EXPECT_EQ((*a)[i].top_limit, (*b)[i].top_limit);
    EXPECT_EQ((*a)[i].filters.size(), (*b)[i].filters.size());
  }
}

TEST(SchemaGraphTest, EmptyGraphRejected) {
  SchemaGraph g;
  QueryGenParams params;
  Rng rng(7);
  EXPECT_FALSE(GenerateQuery(g, params, "q", &rng).ok());
}

TEST(SchemaGraphTest, AggRespectsGroupableColumns) {
  SchemaGraph g = StarGraph();
  QueryGenParams params;
  params.agg_prob = 1.0;
  params.min_joins = 1;
  params.max_joins = 2;
  Rng rng(8);
  size_t with_agg = 0;
  for (int i = 0; i < 100; ++i) {
    auto spec = GenerateQuery(g, params, "q", &rng);
    ASSERT_TRUE(spec.ok());
    if (!spec->agg.has_value()) continue;  // group table not in the chain
    ++with_agg;
    for (const auto& [pos, col] : spec->agg->group_cols) {
      ASSERT_LT(pos, spec->tables.size());
      EXPECT_EQ(col, "attr");  // only groupable column in the graph
      EXPECT_EQ(spec->tables[pos], "dim_small");
    }
  }
  EXPECT_GT(with_agg, 20u);
}

}  // namespace
}  // namespace rpe
