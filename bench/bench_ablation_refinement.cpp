// Ablation (paper §3.3 / §7 outlook): how much does online cardinality
// refinement buy? Compares TGN computed from (a) the raw optimizer
// estimates E0, frozen for the whole query, (b) the bound-clamped online
// refinement of [6] (the engine's default E_i), and (c) the interpolation
// refinement of [13] (the TGNINT estimator). The paper's §7 names better
// online refinement as the main avenue for further gains.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

namespace {

/// TGN using the *initial* estimates (no online refinement).
double StaticTgn(const PipelineView& view, size_t oi) {
  const Observation& obs = view.obs(oi);
  double k = 0.0, e0 = 0.0;
  for (int id : view.pipeline->nodes) {
    k += obs.k[static_cast<size_t>(id)];
    e0 += view.node(id)->est_rows;
  }
  if (e0 <= 0.0) return k > 0.0 ? 1.0 : 0.0;
  return std::clamp(k / e0, 0.0, 1.0);
}

struct Accumulator {
  double sum = 0.0;
  size_t n = 0;
  void Add(double v) {
    sum += v;
    ++n;
  }
  double mean() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
};

}  // namespace

int main() {
  std::cout << "=== Ablation: online cardinality refinement (§3.3) ===\n";
  WorkloadConfig config;
  config.kind = WorkloadKind::kTpch;
  config.name = "refine-ablation";
  config.scale = 10.0;
  config.zipf = 1.0;
  config.tuning = TuningLevel::kPartiallyTuned;
  config.num_queries = 250;
  config.seed = 81;
  auto workload = BuildWorkload(config);
  RPE_CHECK(workload.ok()) << workload.status().ToString();

  Accumulator frozen, clamped, interpolated, oracle;
  RunOptions options;
  for (const QuerySpec& spec : workload->queries) {
    auto run = RunQuery(*workload, spec, options);
    if (!run.ok()) continue;
    for (const Pipeline& pipeline : run->result.pipelines) {
      if (pipeline.first_obs < 0 ||
          pipeline.last_obs - pipeline.first_obs < 5) {
        continue;
      }
      PipelineView view{&run->result, &pipeline};
      double sum_frozen = 0.0;
      size_t count = 0;
      for (int oi = pipeline.first_obs; oi <= pipeline.last_obs; ++oi) {
        const double truth = view.TrueProgress(static_cast<size_t>(oi));
        sum_frozen +=
            std::abs(StaticTgn(view, static_cast<size_t>(oi)) - truth);
        ++count;
      }
      frozen.Add(sum_frozen / static_cast<double>(count));
      clamped.Add(
          EvaluateEstimator(GetEstimator(EstimatorKind::kTgn), view).l1);
      interpolated.Add(
          EvaluateEstimator(GetEstimator(EstimatorKind::kTgnInt), view).l1);
      oracle.Add(
          EvaluateEstimator(GetEstimator(EstimatorKind::kOracleGetNext), view)
              .l1);
    }
  }

  TablePrinter table({"Cardinality source for TGN", "avg L1"});
  table.AddRow({"frozen optimizer estimates (no refinement)",
                TablePrinter::Fmt(frozen.mean(), 4)});
  table.AddRow({"bound-clamped online refinement [6] (TGN)",
                TablePrinter::Fmt(clamped.mean(), 4)});
  table.AddRow({"interpolation refinement [13] (TGNINT)",
                TablePrinter::Fmt(interpolated.mean(), 4)});
  table.AddRow({"true cardinalities (GetNext oracle, lower bound)",
                TablePrinter::Fmt(oracle.mean(), 4)});
  table.Print();
  std::cout << "\n(" << frozen.n << " pipelines) Expected: each refinement\n"
               "level improves on the last; the gap to the oracle is the\n"
               "headroom §7 attributes to better online refinement.\n";
  return 0;
}
